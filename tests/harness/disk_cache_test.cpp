#include "harness/disk_cache.hpp"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace ebm {
namespace {

class DiskCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "ebm_cache_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".txt";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(DiskCacheTest, MissingFileIsEmptyCache)
{
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get("nope").has_value());
}

TEST_F(DiskCacheTest, PutThenGetRoundTrip)
{
    DiskCache cache(path_);
    cache.put("k1", {1.0, 2.5, -3.0});
    const auto v = cache.get("k1");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, (std::vector<double>{1.0, 2.5, -3.0}));
}

TEST_F(DiskCacheTest, PersistsAcrossInstances)
{
    {
        DiskCache cache(path_);
        cache.put("alone/BFS/4", {0.123456789012345, 42.0});
    }
    DiskCache reopened(path_);
    const auto v = reopened.get("alone/BFS/4");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ((*v)[0], 0.123456789012345);
    EXPECT_DOUBLE_EQ((*v)[1], 42.0);
}

TEST_F(DiskCacheTest, OverwriteUpdatesInMemoryValue)
{
    DiskCache cache(path_);
    cache.put("k", {1.0});
    cache.put("k", {2.0});
    EXPECT_EQ((*cache.get("k"))[0], 2.0);
}

TEST_F(DiskCacheTest, EmptyValueAllowed)
{
    DiskCache cache(path_);
    cache.put("empty", {});
    ASSERT_TRUE(cache.get("empty").has_value());
    EXPECT_TRUE(cache.get("empty")->empty());
}

TEST_F(DiskCacheTest, CorruptLinesAreSkipped)
{
    {
        std::ofstream out(path_);
        out << "not a valid line\n";
        out << "good| 1 2 3\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.get("good").has_value());
}

TEST_F(DiskCacheTest, ManyKeys)
{
    DiskCache cache(path_);
    for (int i = 0; i < 100; ++i)
        cache.put("key" + std::to_string(i),
                  {static_cast<double>(i)});
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 100u);
    EXPECT_EQ((*reopened.get("key57"))[0], 57.0);
}

TEST_F(DiskCacheTest, ReservedCharacterInKeyIsFatal)
{
    DiskCache cache(path_);
    EXPECT_DEATH(cache.put("bad|key", {1.0}), "reserved");
}

} // namespace
} // namespace ebm
