#include "harness/disk_cache.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/rng.hpp"
#include "harness/shard_claim.hpp"

namespace ebm {
namespace {

/** Slurp a file's raw bytes. */
std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** The v2 text checksum (mirrors the store's private algorithm). */
std::uint64_t
v2Checksum(const std::string &key, const std::vector<double> &values)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    for (const double v : values)
        h = hashIds(h, std::bit_cast<std::uint64_t>(v));
    return h;
}

std::string
toHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

class DiskCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "ebm_cache_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".txt";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".quarantined").c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    std::string path_;
};

TEST_F(DiskCacheTest, MissingFileIsEmptyCache)
{
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get("nope").has_value());
}

TEST_F(DiskCacheTest, PutThenGetRoundTrip)
{
    DiskCache cache(path_);
    cache.put("k1", {1.0, 2.5, -3.0});
    const auto v = cache.get("k1");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, (std::vector<double>{1.0, 2.5, -3.0}));
}

TEST_F(DiskCacheTest, PersistsAcrossInstances)
{
    {
        DiskCache cache(path_);
        cache.put("alone/BFS/4", {0.123456789012345, 42.0});
    }
    DiskCache reopened(path_);
    const auto v = reopened.get("alone/BFS/4");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ((*v)[0], 0.123456789012345);
    EXPECT_DOUBLE_EQ((*v)[1], 42.0);
}

TEST_F(DiskCacheTest, OverwriteUpdatesInMemoryValue)
{
    DiskCache cache(path_);
    cache.put("k", {1.0});
    cache.put("k", {2.0});
    EXPECT_EQ((*cache.get("k"))[0], 2.0);
}

TEST_F(DiskCacheTest, EmptyValueAllowed)
{
    DiskCache cache(path_);
    cache.put("empty", {});
    ASSERT_TRUE(cache.get("empty").has_value());
    EXPECT_TRUE(cache.get("empty")->empty());
}

TEST_F(DiskCacheTest, CorruptLinesAreSkipped)
{
    {
        std::ofstream out(path_);
        out << "not a valid line\n";
        out << "good| 1 2 3\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.get("good").has_value());
}

TEST_F(DiskCacheTest, ManyKeys)
{
    DiskCache cache(path_);
    for (int i = 0; i < 100; ++i)
        cache.put("key" + std::to_string(i),
                  {static_cast<double>(i)});
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 100u);
    EXPECT_EQ((*reopened.get("key57"))[0], 57.0);
}

TEST_F(DiskCacheTest, ReservedCharacterInKeyIsFatal)
{
    DiskCache cache(path_);
    EXPECT_EBM_FATAL(cache.put("bad|key", {1.0}), "reserved");
    EXPECT_EBM_FATAL(cache.put("", {1.0}), "empty key");
}

TEST_F(DiskCacheTest, FileStartsWithBinaryHeader)
{
    {
        DiskCache cache(path_);
        cache.put("k", {1.0});
    }
    const std::string bytes = slurpFile(path_);
    ASSERT_GE(bytes.size(), 64u);
    EXPECT_EQ(bytes.substr(0, 8), "EBMCBIN3");
    // The machine fingerprint sits in the header's fixed field.
    EXPECT_EQ(bytes.find(DiskCache::machineFingerprint()), 16u);
}

TEST_F(DiskCacheTest, TornTailTruncatesInsteadOfQuarantining)
{
    {
        DiskCache cache(path_);
        cache.put("good", {1.0, 2.0});
        cache.put("torn", {3.0, 4.0});
    }
    // Chop the file mid-frame, as a killed writer would leave it.
    // Entries append in put order, so "torn" holds the tail frame.
    const std::string content = slurpFile(path_);
    {
        std::ofstream out(path_, std::ios::trunc | std::ios::binary);
        out << content.substr(0, content.size() - 9);
    }
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.loadReport().entriesSkipped, 1u);
    EXPECT_TRUE(reopened.loadReport().tornTailTruncated);
    // The tail was chopped, not the world: no quarantine, the intact
    // prefix survives, and the torn entry reads as a miss.
    EXPECT_FALSE(reopened.loadReport().quarantined);
    EXPECT_TRUE(reopened.get("good").has_value());
    EXPECT_FALSE(reopened.get("torn").has_value());

    // The truncation is durable: the next open is perfectly clean.
    DiskCache clean(path_);
    EXPECT_EQ(clean.size(), 1u);
    EXPECT_EQ(clean.loadReport().entriesSkipped, 0u);
    EXPECT_FALSE(clean.loadReport().tornTailTruncated);
}

TEST_F(DiskCacheTest, GarbageFloatsFailChecksumAndAreSkipped)
{
    {
        std::ofstream out(path_);
        out << "ebmcache v2 " << DiskCache::machineFingerprint()
            << '\n';
        out << "junk|0123456789abcdef| 1.0 banana 3.0\n";
        out << "alsojunk|00ff| 0.5e+\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.loadReport().entriesSkipped, 2u);
    EXPECT_TRUE(cache.loadReport().quarantined);
    // The cache stays usable afterwards.
    cache.put("fresh", {1.0});
    EXPECT_TRUE(cache.get("fresh").has_value());
}

TEST_F(DiskCacheTest, FlippedBitMidFileFailsChecksumAndQuarantines)
{
    {
        DiskCache cache(path_);
        cache.put("first", {1.25});
        cache.put("second", {2.5});
    }
    std::string content = slurpFile(path_);
    // Corrupt a raw value byte of the *first* frame: damage before
    // the tail can never be a torn append, so the whole file is
    // suspect and gets quarantined (v2 contract, frame-by-frame).
    const double v = 1.25;
    std::string needle(sizeof v, '\0');
    std::memcpy(needle.data(), &v, sizeof v);
    const auto pos = content.find(needle);
    ASSERT_NE(pos, std::string::npos);
    content[pos] ^= 0x40;
    {
        std::ofstream out(path_, std::ios::trunc | std::ios::binary);
        out << content;
    }
    DiskCache reopened(path_);
    EXPECT_FALSE(reopened.get("first").has_value());
    EXPECT_EQ(reopened.loadReport().entriesSkipped, 1u);
    EXPECT_TRUE(reopened.loadReport().quarantined);
    EXPECT_FALSE(reopened.loadReport().tornTailTruncated);
    std::remove(reopened.loadReport().quarantinePath.c_str());
}

TEST_F(DiskCacheTest, FlippedBitInTailFrameTruncatesOnly)
{
    {
        DiskCache cache(path_);
        cache.put("first", {1.25});
        cache.put("second", {2.5});
    }
    std::string content = slurpFile(path_);
    // A garbled byte in the *final* frame is indistinguishable from a
    // cut tail write: the store chops it and keeps the prefix.
    const double v = 2.5;
    std::string needle(sizeof v, '\0');
    std::memcpy(needle.data(), &v, sizeof v);
    const auto pos = content.find(needle);
    ASSERT_NE(pos, std::string::npos);
    content[pos] ^= 0x40;
    {
        std::ofstream out(path_, std::ios::trunc | std::ios::binary);
        out << content;
    }
    DiskCache reopened(path_);
    EXPECT_TRUE(reopened.get("first").has_value());
    EXPECT_FALSE(reopened.get("second").has_value());
    EXPECT_TRUE(reopened.loadReport().tornTailTruncated);
    EXPECT_FALSE(reopened.loadReport().quarantined);
}

TEST_F(DiskCacheTest, WrongVersionHeaderQuarantinesAndStartsFresh)
{
    {
        std::ofstream out(path_);
        out << "ebmcache v999 " << DiskCache::machineFingerprint()
            << '\n';
        out << "key|0000000000000000| 1 2 3\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.loadReport().quarantined);
    // The bad file was set aside, not destroyed.
    std::ifstream q(cache.loadReport().quarantinePath);
    EXPECT_TRUE(q.good());
    std::remove(cache.loadReport().quarantinePath.c_str());
}

TEST_F(DiskCacheTest, ForeignMachineFingerprintQuarantines)
{
    {
        std::ofstream out(path_);
        out << "ebmcache v2 vax-d128-be\n";
        out << "key|0000000000000000| 1\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.loadReport().quarantined);
    std::remove(cache.loadReport().quarantinePath.c_str());
}

TEST_F(DiskCacheTest, DuplicateKeysLastWins)
{
    // The append-only v1 format could accumulate duplicate keys; the
    // later record must win and the duplicate must be counted.
    {
        std::ofstream out(path_);
        out << "dup| 1\n";
        out << "other| 7\n";
        out << "dup| 2\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.loadReport().duplicateKeys, 1u);
    EXPECT_EQ((*cache.get("dup"))[0], 2.0);
}

TEST_F(DiskCacheTest, UnwritableDirectoryDegradesToMemoryOnly)
{
    DiskCache cache("/nonexistent-dir-ebm/sub/cache.txt");
    cache.put("k", {1.0});
    EXPECT_GE(cache.persistFailures(), 1u);
    // The entry is still served from memory.
    ASSERT_TRUE(cache.get("k").has_value());
    EXPECT_EQ((*cache.get("k"))[0], 1.0);
}

TEST_F(DiskCacheTest, LegacyV1FileIsMigrated)
{
    {
        std::ofstream out(path_);
        out << "alone/BFS/4| 0.5 0.25\n";
        out << "not a valid line\n";
        out << "combo/x/1/1| 1 2 3 4 5\n";
    }
    DiskCache cache(path_);
    EXPECT_TRUE(cache.loadReport().migratedV1);
    EXPECT_EQ(cache.size(), 2u);
    ASSERT_TRUE(cache.get("alone/BFS/4").has_value());
    EXPECT_EQ((*cache.get("alone/BFS/4"))[1], 0.25);

    // The file on disk is now binary v3 and round-trips losslessly.
    DiskCache upgraded(path_);
    EXPECT_FALSE(upgraded.loadReport().migratedV1);
    EXPECT_EQ(upgraded.size(), 2u);
    EXPECT_EQ(slurpFile(path_).substr(0, 8), "EBMCBIN3");
}

TEST_F(DiskCacheTest, V2TextFileIsMigratedToV3)
{
    const std::vector<double> a = {0.5, 0.25};
    const std::vector<double> b = {1.0, 2.0, 3.0, 4.0, 5.0};
    {
        std::ofstream out(path_);
        out << "ebmcache v2 " << DiskCache::machineFingerprint()
            << '\n';
        out.precision(17);
        out << "alone/BFS/4|" << toHex(v2Checksum("alone/BFS/4", a))
            << "| 0.5 0.25\n";
        out << "combo/x/1/1|" << toHex(v2Checksum("combo/x/1/1", b))
            << "| 1 2 3 4 5\n";
    }
    DiskCache cache(path_);
    EXPECT_TRUE(cache.loadReport().migratedV2);
    EXPECT_FALSE(cache.loadReport().quarantined);
    EXPECT_EQ(cache.size(), 2u);
    ASSERT_TRUE(cache.get("combo/x/1/1").has_value());
    EXPECT_EQ((*cache.get("combo/x/1/1"))[4], 5.0);

    // The migrated file is binary v3, loads without another
    // migration, and serves bit-identical doubles.
    DiskCache upgraded(path_);
    EXPECT_FALSE(upgraded.loadReport().migratedV2);
    EXPECT_EQ(upgraded.size(), 2u);
    EXPECT_EQ((*upgraded.get("alone/BFS/4"))[1], 0.25);
    EXPECT_EQ(slurpFile(path_).substr(0, 8), "EBMCBIN3");
}

TEST_F(DiskCacheTest, BinaryHeaderFingerprintMismatchQuarantines)
{
    {
        DiskCache cache(path_);
        cache.put("k", {1.0});
    }
    // Rewrite the header's fingerprint field: a foreign machine's
    // bit patterns cannot be trusted, binary or not.
    std::string content = slurpFile(path_);
    ASSERT_GE(content.size(), 56u);
    const std::string foreign = "vax-d128-be";
    content.replace(16, foreign.size() + 1, foreign + '\0');
    {
        std::ofstream out(path_, std::ios::trunc | std::ios::binary);
        out << content;
    }
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 0u);
    EXPECT_TRUE(reopened.loadReport().quarantined);
    std::remove(reopened.loadReport().quarantinePath.c_str());
}

TEST_F(DiskCacheTest, CompactionIsByteIdenticalForAnEntrySet)
{
    const std::string other = path_ + ".b";
    {
        // Same entries, opposite insertion order, different shard
        // counts: the appended files differ...
        DiskCache one(path_, nullptr, 4);
        one.put("alpha", {1.0, 2.0});
        one.put("beta", {3.0});
        one.put("gamma", {});
        DiskCache two(other, nullptr, 32);
        two.put("gamma", {});
        two.put("beta", {3.0});
        two.put("alpha", {1.0, 2.0});
        EXPECT_NE(slurpFile(path_), slurpFile(other));
        // ...until compaction sorts by key: then the stores are
        // byte-identical, and compacting again changes nothing.
        EXPECT_TRUE(one.compact());
        EXPECT_TRUE(two.compact());
        const std::string bytes = slurpFile(path_);
        EXPECT_EQ(bytes, slurpFile(other));
        EXPECT_TRUE(one.compact());
        EXPECT_EQ(bytes, slurpFile(path_));
    }
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 3u);
    EXPECT_EQ((*reopened.get("alpha"))[1], 2.0);
    std::remove(other.c_str());
    std::remove((other + ".tmp").c_str());
}

TEST_F(DiskCacheTest, RefreshFoldsInPeerAppends)
{
    DiskCache writer(path_);
    DiskCache reader(path_);
    EXPECT_EQ(reader.refresh(), 0u);

    writer.put("row1", {1.0});
    writer.put("row2", {2.0});
    EXPECT_FALSE(reader.get("row1").has_value());
    EXPECT_EQ(reader.refresh(), 2u);
    EXPECT_EQ((*reader.get("row1"))[0], 1.0);
    EXPECT_EQ((*reader.get("row2"))[0], 2.0);

    // The scan cursor advances: nothing is merged twice, and the
    // peers can take turns appending.
    EXPECT_EQ(reader.refresh(), 0u);
    reader.put("row3", {3.0});
    EXPECT_EQ(writer.refresh(), 1u);
    EXPECT_EQ((*writer.get("row3"))[0], 3.0);
}

TEST_F(DiskCacheTest, PersistCountersTrackAppendAmplification)
{
    DiskCache cache(path_);
    EXPECT_EQ(cache.bytesWritten(), 0u);
    cache.put("k1", {1.0});
    cache.put("k2", {2.0});
    cache.put("k3", {3.0});
    // Serial puts: one batch each, and the bytes written are exactly
    // the file size (header + three frames) — append-only I/O is
    // O(new entries), never a rewrite of the whole store.
    EXPECT_EQ(cache.appendBatches(), 3u);
    EXPECT_EQ(cache.entriesAppended(), 3u);
    EXPECT_EQ(cache.bytesWritten(), slurpFile(path_).size());
    EXPECT_EQ(cache.loadReport().bytesWritten, cache.bytesWritten());
}

TEST_F(DiskCacheTest, ForkedWritersShareOneStoreUnderFlock)
{
    // The cross-process hammer: N forked children append disjoint
    // keys to one store concurrently; flock serializes the appends
    // and every frame survives.
    constexpr int kWriters = 4;
    constexpr int kKeysPer = 8;
    std::vector<pid_t> kids;
    for (int w = 0; w < kWriters; ++w) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: its own DiskCache instance on the shared path.
            {
                DiskCache mine(path_);
                for (int k = 0; k < kKeysPer; ++k) {
                    mine.put("w" + std::to_string(w) + "/k" +
                                 std::to_string(k),
                             {static_cast<double>(w),
                              static_cast<double>(k)});
                }
            }
            ::_exit(0);
        }
        kids.push_back(pid);
    }
    for (const pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    DiskCache merged(path_);
    EXPECT_EQ(merged.size(),
              static_cast<std::size_t>(kWriters * kKeysPer));
    EXPECT_EQ(merged.loadReport().entriesSkipped, 0u);
    EXPECT_FALSE(merged.loadReport().quarantined);
    for (int w = 0; w < kWriters; ++w) {
        for (int k = 0; k < kKeysPer; ++k) {
            const auto v = merged.get("w" + std::to_string(w) + "/k" +
                                      std::to_string(k));
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ((*v)[0], static_cast<double>(w));
            EXPECT_EQ((*v)[1], static_cast<double>(k));
        }
    }
}

TEST_F(DiskCacheTest, GetValidatedRejectsWrongShape)
{
    DiskCache cache(path_);
    cache.put("k", {1.0, 2.0, 3.0});
    EXPECT_TRUE(cache.getValidated("k", 3).has_value());
    EXPECT_FALSE(cache.getValidated("k", 4).has_value());
    EXPECT_FALSE(cache.getValidated("missing", 3).has_value());
}

TEST_F(DiskCacheTest, GetValidatedRejectsNonFiniteValues)
{
    DiskCache cache(path_);
    cache.put("nan", {1.0, std::numeric_limits<double>::quiet_NaN()});
    cache.put("inf", {std::numeric_limits<double>::infinity(), 2.0});
    cache.put("neginf",
              {-std::numeric_limits<double>::infinity(), 2.0});
    cache.put("ok", {1.0, 2.0});

    // Raw get still serves the stored bits; the validated lookup —
    // the one sweep consumers use — treats non-finite as a miss so
    // pre-guard garbage gets recomputed instead of consumed.
    EXPECT_TRUE(cache.get("nan").has_value());
    EXPECT_FALSE(cache.getValidated("nan", 2).has_value());
    EXPECT_FALSE(cache.getValidated("inf", 2).has_value());
    EXPECT_FALSE(cache.getValidated("neginf", 2).has_value());
    EXPECT_TRUE(cache.getValidated("ok", 2).has_value());
}

TEST_F(DiskCacheTest, InjectedWriteFailureKeepsEntryInMemory)
{
    FaultInjector fi(3);
    fi.armProbability(FaultInjector::Point::CacheWriteFail, 1.0);
    DiskCache cache(path_, &fi);
    cache.put("k", {1.0});
    EXPECT_EQ(cache.persistFailures(), 1u);
    EXPECT_TRUE(cache.get("k").has_value());
    // Nothing reached disk.
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 0u);
}

TEST_F(DiskCacheTest, DefaultPathHonorsCacheDirEnv)
{
    unsetenv("EBM_CACHE_DIR");
    EXPECT_EQ(DiskCache::defaultPath(), "ebm_results.cache");
    setenv("EBM_CACHE_DIR", "/var/tmp/ebm", 1);
    EXPECT_EQ(DiskCache::defaultPath(), "/var/tmp/ebm/ebm_results.cache");
    setenv("EBM_CACHE_DIR", "/var/tmp/ebm/", 1);
    EXPECT_EQ(DiskCache::defaultPath("x.cache"), "/var/tmp/ebm/x.cache");
    unsetenv("EBM_CACHE_DIR");
}

TEST_F(DiskCacheTest, InjectedTruncationRecoversAllButLastEntry)
{
    {
        DiskCache cache(path_);
        for (int i = 0; i < 10; ++i)
            cache.put("key" + std::to_string(i),
                      {static_cast<double>(i)});
    }
    FaultInjector fi(3);
    fi.armAfter(FaultInjector::Point::CacheReadTruncate, 0, 1);
    DiskCache cache(path_, &fi);
    EXPECT_EQ(cache.size(), 9u);
    EXPECT_EQ(cache.loadReport().entriesSkipped, 1u);
}

// ---------------------------------------------------------------------
// Read-only degrade mode (EBM_CACHE_READONLY forces it, so the tests
// hold even where permission bits don't apply, e.g. running as root).
// ---------------------------------------------------------------------

TEST_F(DiskCacheTest, ReadOnlyModeServesEntriesAndRefusesAppends)
{
    {
        DiskCache cache(path_);
        cache.put("served", {1.0, 2.0});
        cache.sync();
    }
    const std::string before = slurpFile(path_);

    setenv("EBM_CACHE_READONLY", "1", 1);
    {
        DiskCache cache(path_);
        EXPECT_TRUE(cache.readOnly());
        EXPECT_TRUE(cache.loadReport().readOnlyMode);

        // Reads work: the store still serves its entries.
        ASSERT_TRUE(cache.get("served").has_value());
        EXPECT_EQ(cache.get("served")->size(), 2u);

        // Appends are refused with a structured error, but the entry
        // stays warm in memory for this process.
        const Status s = cache.tryPut("new", {3.0});
        ASSERT_FALSE(s.ok());
        EXPECT_EQ(s.error().code, Errc::CacheIo);
        EXPECT_NE(s.error().message.find("read-only"),
                  std::string::npos);
        EXPECT_TRUE(cache.get("new").has_value());
        EXPECT_EQ(cache.persistFailures(), 1u);

        // put() is tryPut with the status dropped — same refusal.
        cache.put("other", {4.0});
        EXPECT_EQ(cache.persistFailures(), 2u);

        // Compaction is refused without touching the file.
        EXPECT_FALSE(cache.compact());
    }
    unsetenv("EBM_CACHE_READONLY");

    EXPECT_EQ(slurpFile(path_), before)
        << "read-only mode must never write a byte";
    DiskCache reopened(path_);
    EXPECT_FALSE(reopened.readOnly());
    EXPECT_EQ(reopened.size(), 1u)
        << "refused appends must not leak to disk";
}

TEST_F(DiskCacheTest, ReadOnlyModeWithNoFileIsAnEmptyStore)
{
    setenv("EBM_CACHE_READONLY", "1", 1);
    DiskCache cache(path_);
    unsetenv("EBM_CACHE_READONLY");
    EXPECT_TRUE(cache.readOnly());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get("anything").has_value());
    EXPECT_FALSE(cache.tryPut("k", {1.0}).ok());
}

TEST_F(DiskCacheTest, ReadOnlyModeLeavesTornTailOnDisk)
{
    {
        DiskCache cache(path_);
        cache.put("whole", {1.0});
        cache.put("torn", {2.0});
        cache.sync();
    }
    // Chop mid-frame: the online writable path would truncate this.
    std::string bytes = slurpFile(path_);
    bytes.resize(bytes.size() - 3);
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    setenv("EBM_CACHE_READONLY", "1", 1);
    {
        DiskCache cache(path_);
        EXPECT_EQ(cache.size(), 1u);
        EXPECT_TRUE(cache.loadReport().tornTailTruncated);
    }
    unsetenv("EBM_CACHE_READONLY");
    EXPECT_EQ(slurpFile(path_), bytes)
        << "read-only load must not repair the file";
}

// ---------------------------------------------------------------------
// Injected I/O faults through the shim seam (common/io_fault.hpp).
// ---------------------------------------------------------------------

TEST_F(DiskCacheTest, InjectedEnospcFailsAppendAndKeepsEntryInMemory)
{
    FaultInjector fi(11);
    // Query 0 is the header write of the first batch; failing it
    // fails the whole append.
    fi.armAfter(FaultInjector::Point::IoEnospc, 0, 1);
    DiskCache cache(path_, &fi);
    cache.put("k", {1.0});
    EXPECT_EQ(cache.persistFailures(), 1u);
    EXPECT_TRUE(cache.get("k").has_value());

    // The next put retries from scratch and succeeds.
    cache.put("k2", {2.0});
    cache.sync();
    DiskCache reopened(path_);
    EXPECT_TRUE(reopened.get("k2").has_value());
}

TEST_F(DiskCacheTest, InjectedShortWriteRollsBackTheTornBatch)
{
    {
        DiskCache cache(path_);
        cache.put("base", {1.0});
        cache.sync();
    }
    const std::string before = slurpFile(path_);

    FaultInjector fi(11);
    // Query 0 is the batch append (header already exists).
    fi.armAfter(FaultInjector::Point::IoShortWrite, 0, 1);
    DiskCache cache(path_, &fi);
    cache.put("torn", {2.0});
    EXPECT_EQ(cache.persistFailures(), 1u);
    EXPECT_EQ(slurpFile(path_), before)
        << "the partial append must be truncated away";

    // A clean store remains behind: full reload sees only the base.
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_FALSE(reopened.loadReport().tornTailTruncated);
}

TEST_F(DiskCacheTest, InjectedFsyncFailureCountsAsPersistFailure)
{
    FaultInjector fi(11);
    fi.armAfter(FaultInjector::Point::IoFsyncFail, 0, 1);
    DiskCache cache(path_, &fi);
    cache.put("k", {1.0});
    EXPECT_EQ(cache.persistFailures(), 1u);
    // The batch write itself may have landed, but the cache refuses
    // to count unsynced bytes as durable; the rollback truncated it.
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 0u);
}

TEST_F(DiskCacheTest, NotedFencingEpochIsEchoedIntoTheHeader)
{
    {
        DiskCache cache(path_);
        cache.put("pre", {1.0});
        cache.sync();
        EXPECT_EQ(cache.loadReport().fencingEpoch, 0u);

        cache.noteFencingEpoch(3);
        cache.noteFencingEpoch(2); // Max wins; lower epochs ignored.
        cache.put("post", {2.0});
        cache.sync();
    }
    {
        DiskCache reopened(path_);
        EXPECT_EQ(reopened.loadReport().fencingEpoch, 3u)
            << "appends after noteFencingEpoch stamp the header";
        // Compaction renders the store canonical: epoch zeroed.
        ASSERT_TRUE(reopened.compact());
    }
    DiskCache compacted(path_);
    EXPECT_EQ(compacted.loadReport().fencingEpoch, 0u);
    EXPECT_EQ(compacted.size(), 2u);
}

// ---------------------------------------------------------------------
// Epoch-sidecar hygiene: compact() sweeps `<keyfp>.epoch` files whose
// claim is gone and whose mtime is past the staleness window — the
// long-lived store stops accreting one sidecar per key ever swept.
// ---------------------------------------------------------------------

/** Count regular files under @p dir whose name ends with @p suffix. */
std::size_t
countFilesWithSuffix(const std::string &dir, const std::string &suffix)
{
    std::size_t n = 0;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return 0;
    while (struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            ++n;
    }
    ::closedir(d);
    return n;
}

/** Remove every file under @p dir, then the dir itself. */
void
removeClaimDir(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d != nullptr) {
        while (struct dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

TEST_F(DiskCacheTest, CompactSweepsOrphanedEpochSidecars)
{
    const std::string claims_dir = path_ + ".claims";
    {
        // A finished sharded sweep: claims released, epoch counters
        // left behind as orphans.
        ShardClaims claims(path_);
        ASSERT_TRUE(claims.tryAcquire("row/a"));
        ASSERT_TRUE(claims.tryAcquire("row/b"));
        ASSERT_TRUE(claims.release("row/a"));
        ASSERT_TRUE(claims.release("row/b"));
    }
    ASSERT_EQ(countFilesWithSuffix(claims_dir, ".epoch"), 2u);

    DiskCache cache(path_);
    cache.put("row/a", {1.0});
    cache.sync();

    // Inside the staleness window the sidecars are load-bearing (a
    // paused owner may still need to be fenced): compact keeps them.
    ASSERT_TRUE(cache.compact());
    EXPECT_EQ(countFilesWithSuffix(claims_dir, ".epoch"), 2u);

    // Past the window they are garbage: compact sweeps them.
    ::setenv("EBM_CLAIM_STALE_MS", "1", 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const bool compacted = cache.compact();
    ::unsetenv("EBM_CLAIM_STALE_MS");
    ASSERT_TRUE(compacted);
    EXPECT_EQ(countFilesWithSuffix(claims_dir, ".epoch"), 0u);

    removeClaimDir(claims_dir);
}

TEST_F(DiskCacheTest, CompactKeepsEpochSidecarsUnderLiveClaims)
{
    const std::string claims_dir = path_ + ".claims";
    ShardClaims claims(path_);
    ASSERT_TRUE(claims.tryAcquire("row/held"));
    ASSERT_EQ(countFilesWithSuffix(claims_dir, ".epoch"), 1u);

    DiskCache cache(path_);
    cache.put("row/held", {1.0});
    cache.sync();

    // Even with a 1ms window the sidecar survives: its claim file is
    // present, so the epoch is owned, not orphaned — deleting it
    // would reset the fence under a live owner.
    ::setenv("EBM_CLAIM_STALE_MS", "1", 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const bool compacted = cache.compact();
    ::unsetenv("EBM_CLAIM_STALE_MS");
    ASSERT_TRUE(compacted);
    EXPECT_EQ(countFilesWithSuffix(claims_dir, ".epoch"), 1u);

    EXPECT_TRUE(claims.release("row/held"));
    removeClaimDir(claims_dir);
}

} // namespace
} // namespace ebm
