#include "harness/disk_cache.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

class DiskCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "ebm_cache_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".txt";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".quarantined").c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    std::string path_;
};

TEST_F(DiskCacheTest, MissingFileIsEmptyCache)
{
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get("nope").has_value());
}

TEST_F(DiskCacheTest, PutThenGetRoundTrip)
{
    DiskCache cache(path_);
    cache.put("k1", {1.0, 2.5, -3.0});
    const auto v = cache.get("k1");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, (std::vector<double>{1.0, 2.5, -3.0}));
}

TEST_F(DiskCacheTest, PersistsAcrossInstances)
{
    {
        DiskCache cache(path_);
        cache.put("alone/BFS/4", {0.123456789012345, 42.0});
    }
    DiskCache reopened(path_);
    const auto v = reopened.get("alone/BFS/4");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ((*v)[0], 0.123456789012345);
    EXPECT_DOUBLE_EQ((*v)[1], 42.0);
}

TEST_F(DiskCacheTest, OverwriteUpdatesInMemoryValue)
{
    DiskCache cache(path_);
    cache.put("k", {1.0});
    cache.put("k", {2.0});
    EXPECT_EQ((*cache.get("k"))[0], 2.0);
}

TEST_F(DiskCacheTest, EmptyValueAllowed)
{
    DiskCache cache(path_);
    cache.put("empty", {});
    ASSERT_TRUE(cache.get("empty").has_value());
    EXPECT_TRUE(cache.get("empty")->empty());
}

TEST_F(DiskCacheTest, CorruptLinesAreSkipped)
{
    {
        std::ofstream out(path_);
        out << "not a valid line\n";
        out << "good| 1 2 3\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.get("good").has_value());
}

TEST_F(DiskCacheTest, ManyKeys)
{
    DiskCache cache(path_);
    for (int i = 0; i < 100; ++i)
        cache.put("key" + std::to_string(i),
                  {static_cast<double>(i)});
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 100u);
    EXPECT_EQ((*reopened.get("key57"))[0], 57.0);
}

TEST_F(DiskCacheTest, ReservedCharacterInKeyIsFatal)
{
    DiskCache cache(path_);
    EXPECT_EBM_FATAL(cache.put("bad|key", {1.0}), "reserved");
    EXPECT_EBM_FATAL(cache.put("", {1.0}), "empty key");
}

TEST_F(DiskCacheTest, FileStartsWithVersionHeader)
{
    {
        DiskCache cache(path_);
        cache.put("k", {1.0});
    }
    std::ifstream in(path_);
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first,
              "ebmcache v2 " + DiskCache::machineFingerprint());
}

TEST_F(DiskCacheTest, TruncatedLastLineIsSkippedAndRecomputable)
{
    {
        DiskCache cache(path_);
        cache.put("good", {1.0, 2.0});
        cache.put("torn", {3.0, 4.0});
    }
    // Chop the file mid-line, as a killed writer would leave it.
    std::string content;
    {
        std::ifstream in(path_);
        std::stringstream ss;
        ss << in.rdbuf();
        content = ss.str();
    }
    {
        std::ofstream out(path_, std::ios::trunc);
        out << content.substr(0, content.size() - 9);
    }
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.loadReport().entriesSkipped, 1u);
    // Keys persist sorted, so "torn" was the (damaged) last line: it
    // reads as a miss and the caller recomputes; "good" survives.
    EXPECT_TRUE(reopened.get("good").has_value());
    EXPECT_FALSE(reopened.get("torn").has_value());
}

TEST_F(DiskCacheTest, GarbageFloatsFailChecksumAndAreSkipped)
{
    {
        std::ofstream out(path_);
        out << "ebmcache v2 " << DiskCache::machineFingerprint()
            << '\n';
        out << "junk|0123456789abcdef| 1.0 banana 3.0\n";
        out << "alsojunk|00ff| 0.5e+\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.loadReport().entriesSkipped, 2u);
    EXPECT_TRUE(cache.loadReport().quarantined);
    // The cache stays usable afterwards.
    cache.put("fresh", {1.0});
    EXPECT_TRUE(cache.get("fresh").has_value());
}

TEST_F(DiskCacheTest, FlippedBitFailsChecksum)
{
    {
        DiskCache cache(path_);
        cache.put("key", {1.25});
    }
    std::string content;
    {
        std::ifstream in(path_);
        std::stringstream ss;
        ss << in.rdbuf();
        content = ss.str();
    }
    // Corrupt the value digits ("1.25" -> "9.25"): the checksum in
    // the line no longer matches.
    const auto pos = content.rfind("1.25");
    ASSERT_NE(pos, std::string::npos);
    content[pos] = '9';
    {
        std::ofstream out(path_, std::ios::trunc);
        out << content;
    }
    DiskCache reopened(path_);
    EXPECT_FALSE(reopened.get("key").has_value());
    EXPECT_EQ(reopened.loadReport().entriesSkipped, 1u);
}

TEST_F(DiskCacheTest, WrongVersionHeaderQuarantinesAndStartsFresh)
{
    {
        std::ofstream out(path_);
        out << "ebmcache v999 " << DiskCache::machineFingerprint()
            << '\n';
        out << "key|0000000000000000| 1 2 3\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.loadReport().quarantined);
    // The bad file was set aside, not destroyed.
    std::ifstream q(cache.loadReport().quarantinePath);
    EXPECT_TRUE(q.good());
    std::remove(cache.loadReport().quarantinePath.c_str());
}

TEST_F(DiskCacheTest, ForeignMachineFingerprintQuarantines)
{
    {
        std::ofstream out(path_);
        out << "ebmcache v2 vax-d128-be\n";
        out << "key|0000000000000000| 1\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.loadReport().quarantined);
    std::remove(cache.loadReport().quarantinePath.c_str());
}

TEST_F(DiskCacheTest, DuplicateKeysLastWins)
{
    // The append-only v1 format could accumulate duplicate keys; the
    // later record must win and the duplicate must be counted.
    {
        std::ofstream out(path_);
        out << "dup| 1\n";
        out << "other| 7\n";
        out << "dup| 2\n";
    }
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.loadReport().duplicateKeys, 1u);
    EXPECT_EQ((*cache.get("dup"))[0], 2.0);
}

TEST_F(DiskCacheTest, UnwritableDirectoryDegradesToMemoryOnly)
{
    DiskCache cache("/nonexistent-dir-ebm/sub/cache.txt");
    cache.put("k", {1.0});
    EXPECT_GE(cache.persistFailures(), 1u);
    // The entry is still served from memory.
    ASSERT_TRUE(cache.get("k").has_value());
    EXPECT_EQ((*cache.get("k"))[0], 1.0);
}

TEST_F(DiskCacheTest, LegacyV1FileIsMigrated)
{
    {
        std::ofstream out(path_);
        out << "alone/BFS/4| 0.5 0.25\n";
        out << "not a valid line\n";
        out << "combo/x/1/1| 1 2 3 4 5\n";
    }
    DiskCache cache(path_);
    EXPECT_TRUE(cache.loadReport().migratedV1);
    EXPECT_EQ(cache.size(), 2u);
    ASSERT_TRUE(cache.get("alone/BFS/4").has_value());
    EXPECT_EQ((*cache.get("alone/BFS/4"))[1], 0.25);

    // The file on disk is now v2 and round-trips with checksums.
    DiskCache upgraded(path_);
    EXPECT_FALSE(upgraded.loadReport().migratedV1);
    EXPECT_EQ(upgraded.size(), 2u);
}

TEST_F(DiskCacheTest, GetValidatedRejectsWrongShape)
{
    DiskCache cache(path_);
    cache.put("k", {1.0, 2.0, 3.0});
    EXPECT_TRUE(cache.getValidated("k", 3).has_value());
    EXPECT_FALSE(cache.getValidated("k", 4).has_value());
    EXPECT_FALSE(cache.getValidated("missing", 3).has_value());
}

TEST_F(DiskCacheTest, GetValidatedRejectsNonFiniteValues)
{
    DiskCache cache(path_);
    cache.put("nan", {1.0, std::numeric_limits<double>::quiet_NaN()});
    cache.put("inf", {std::numeric_limits<double>::infinity(), 2.0});
    cache.put("neginf",
              {-std::numeric_limits<double>::infinity(), 2.0});
    cache.put("ok", {1.0, 2.0});

    // Raw get still serves the stored bits; the validated lookup —
    // the one sweep consumers use — treats non-finite as a miss so
    // pre-guard garbage gets recomputed instead of consumed.
    EXPECT_TRUE(cache.get("nan").has_value());
    EXPECT_FALSE(cache.getValidated("nan", 2).has_value());
    EXPECT_FALSE(cache.getValidated("inf", 2).has_value());
    EXPECT_FALSE(cache.getValidated("neginf", 2).has_value());
    EXPECT_TRUE(cache.getValidated("ok", 2).has_value());
}

TEST_F(DiskCacheTest, InjectedWriteFailureKeepsEntryInMemory)
{
    FaultInjector fi(3);
    fi.armProbability(FaultInjector::Point::CacheWriteFail, 1.0);
    DiskCache cache(path_, &fi);
    cache.put("k", {1.0});
    EXPECT_EQ(cache.persistFailures(), 1u);
    EXPECT_TRUE(cache.get("k").has_value());
    // Nothing reached disk.
    DiskCache reopened(path_);
    EXPECT_EQ(reopened.size(), 0u);
}

TEST_F(DiskCacheTest, DefaultPathHonorsCacheDirEnv)
{
    unsetenv("EBM_CACHE_DIR");
    EXPECT_EQ(DiskCache::defaultPath(), "ebm_results.cache");
    setenv("EBM_CACHE_DIR", "/var/tmp/ebm", 1);
    EXPECT_EQ(DiskCache::defaultPath(), "/var/tmp/ebm/ebm_results.cache");
    setenv("EBM_CACHE_DIR", "/var/tmp/ebm/", 1);
    EXPECT_EQ(DiskCache::defaultPath("x.cache"), "/var/tmp/ebm/x.cache");
    unsetenv("EBM_CACHE_DIR");
}

TEST_F(DiskCacheTest, InjectedTruncationRecoversAllButLastEntry)
{
    {
        DiskCache cache(path_);
        for (int i = 0; i < 10; ++i)
            cache.put("key" + std::to_string(i),
                      {static_cast<double>(i)});
    }
    FaultInjector fi(3);
    fi.armAfter(FaultInjector::Point::CacheReadTruncate, 0, 1);
    DiskCache cache(path_, &fi);
    EXPECT_EQ(cache.size(), 9u);
    EXPECT_EQ(cache.loadReport().entriesSkipped, 1u);
}

} // namespace
} // namespace ebm
