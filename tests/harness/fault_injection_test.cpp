/**
 * @file
 * End-to-end fault-injection tests: the acceptance scenarios for the
 * robustness work. Every injected failure — corrupted cache files,
 * NaN EB relays mid-search, transient and persistent run failures, an
 * application draining while PBS probes — must leave the harness on a
 * documented recovery path, with the process alive and exit code 0.
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/fault_injector.hpp"
#include "common/log.hpp"
#include "core/eb_monitor.hpp"
#include "core/pbs_policy.hpp"
#include "core/pbs_search.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"
#include "sim/gpu.hpp"

namespace ebm {
namespace {

using Point = FaultInjector::Point;

class FaultInjectionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cache_path_ = ::testing::TempDir() + "ebm_fault_cache_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      ".txt";
        std::remove(cache_path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(cache_path_.c_str());
        std::remove((cache_path_ + ".quarantined").c_str());
        std::remove((cache_path_ + ".tmp").c_str());
    }

    std::string cache_path_;
};

/**
 * Drive a policy over live sampling windows through a monitor that may
 * have faults armed — the online-controller loop with an unreliable
 * EB relay.
 */
void
driveInjected(Gpu &gpu, TlpPolicy &policy, FaultInjector *fi,
              std::uint32_t windows, Cycle window_len = 400)
{
    EbMonitor mon(gpu, EbMonitor::Mode::DesignatedUnits,
                  /*relay_latency=*/100, fi);
    policy.onRunStart(gpu);
    gpu.checkpoint();
    for (std::uint32_t w = 0; w < windows; ++w) {
        gpu.run(window_len);
        const EbSample sample = mon.closeWindow(gpu.now());
        policy.onWindow(gpu, gpu.now(), sample);
        gpu.checkpoint();
    }
}

/**
 * Acceptance scenario 1: a cache file torn mid-frame (killed writer)
 * is truncated back to the last valid frame on load — not quarantined
 * wholesale — the lost combinations are recomputed, and the final
 * figures are identical to the undamaged sweep.
 */
TEST_F(FaultInjectionTest, CorruptCacheQuarantinesRecomputesIdentical)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");

    ComboTable original;
    {
        DiskCache cache(cache_path_);
        Exhaustive ex(runner, cache);
        original = ex.sweep(wl, {1, 4});
        ASSERT_EQ(ex.status().simulated, 4u);
    }

    // Tear the file mid-frame, as a crash during persist would.
    std::string content;
    {
        std::ifstream in(cache_path_, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        content = ss.str();
    }
    {
        std::ofstream out(cache_path_,
                          std::ios::trunc | std::ios::binary);
        out << content.substr(0, content.size() * 2 / 3);
    }

    const int rc = runGuarded("resweep", [&]() -> int {
        DiskCache cache(cache_path_);
        EXPECT_GE(cache.loadReport().entriesSkipped, 1u);
        EXPECT_TRUE(cache.loadReport().tornTailTruncated);
        EXPECT_FALSE(cache.loadReport().quarantined)
            << "a torn tail must not quarantine the valid prefix";

        Exhaustive ex(runner, cache);
        const ComboTable recovered = ex.sweep(wl, {1, 4});

        // The surviving entries resume from cache, the damaged ones
        // are recomputed — and the figures match the original sweep
        // bit for bit.
        EXPECT_GE(ex.status().simulated, 1u);
        EXPECT_EQ(ex.status().fromCache + ex.status().simulated, 4u);
        EXPECT_EQ(ex.status().skipped, 0u);
        for (std::size_t i = 0; i < original.results.size(); ++i) {
            for (std::size_t a = 0; a < 2; ++a) {
                EXPECT_DOUBLE_EQ(recovered.results[i].apps[a].ipc,
                                 original.results[i].apps[a].ipc);
                EXPECT_DOUBLE_EQ(recovered.results[i].apps[a].bw,
                                 original.results[i].apps[a].bw);
            }
        }
        EXPECT_EQ(Exhaustive::argmax(recovered, OptTarget::EbWS),
                  Exhaustive::argmax(original, OptTarget::EbWS));
        return 0;
    });
    EXPECT_EQ(rc, 0) << "recovery must not escalate to an abort";
}

/**
 * Acceptance scenario 2: NaN EB samples injected mid-search degrade
 * every window, the search cannot converge, and the watchdog applies
 * the caller-documented fallback combination.
 */
TEST_F(FaultInjectionTest, NanEbMidSearchFallsBackToDocumentedCombo)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});

    FaultInjector fi(17);
    // Let a few clean windows through, then poison the relay.
    fi.armAfter(Point::EbSampleNan, 3, 1000);

    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    params.searchBudgetWindows = 12;
    params.fallbackCombo = {2, 2}; // caller's ++bestTLP combination
    PbsPolicy policy(params);

    driveInjected(gpu, policy, &fi, 25);

    EXPECT_GE(policy.degradedWindows(), 1u);
    EXPECT_GE(policy.searchesAbandoned(), 1u);
    EXPECT_TRUE(policy.converged());
    EXPECT_EQ(policy.currentCombo(), (TlpCombo{2, 2}));
    EXPECT_EQ(gpu.appTlp(0), 2u);
    EXPECT_EQ(gpu.appTlp(1), 2u);
}

/** A transient run failure is retried and costs nothing but time. */
TEST_F(FaultInjectionTest, TransientRunFailureIsRetried)
{
    RunOptions opts = test::tinyOptions();
    FaultInjector fi(5);
    fi.armAfter(Point::RunFail, 1, 1); // second run attempt dies once
    opts.faultInjector = &fi;

    Runner runner(test::tinyConfig(2), opts);
    DiskCache cache(cache_path_);
    Exhaustive ex(runner, cache);
    const ComboTable t = ex.sweep(makePair("BLK", "TRD"), {1, 4});

    EXPECT_EQ(ex.status().retried, 1u);
    EXPECT_EQ(ex.status().skipped, 0u);
    for (std::size_t i = 0; i < t.results.size(); ++i) {
        EXPECT_FALSE(t.isSkipped(i));
        EXPECT_GT(t.results[i].apps[0].ipc, 0.0);
    }
}

/**
 * A persistently failing combination exhausts its retries, is marked
 * skipped, and the rest of the sweep — including argmax — proceeds.
 */
TEST_F(FaultInjectionTest, PersistentRunFailureSkipsOnlyThatCombo)
{
    RunOptions opts = test::tinyOptions();
    FaultInjector fi(5);
    // The third combination fails on every attempt (1 try + 2
    // retries); its neighbours are untouched.
    fi.armAfter(Point::RunFail, 2, 3);
    opts.faultInjector = &fi;

    Runner runner(test::tinyConfig(2), opts);
    DiskCache cache(cache_path_);
    Exhaustive ex(runner, cache);
    ASSERT_EQ(ex.maxRetries(), 2u);
    const ComboTable t = ex.sweep(makePair("BLK", "TRD"), {1, 4});

    EXPECT_EQ(ex.status().retried, 2u);
    EXPECT_EQ(ex.status().skipped, 1u);
    std::size_t skipped_rows = 0;
    for (std::size_t i = 0; i < t.results.size(); ++i)
        skipped_rows += t.isSkipped(i) ? 1u : 0u;
    EXPECT_EQ(skipped_rows, 1u);
    EXPECT_NE(ex.status().summaryLine().find("1 skipped"),
              std::string::npos);

    // The skipped row never wins the argmax.
    const TlpCombo best = Exhaustive::argmax(t, OptTarget::EbWS);
    EXPECT_FALSE(t.isSkipped(t.indexOf(best)));
}

/**
 * An application draining mid-search (zero traffic, unit miss rates)
 * degrades every window; the watchdog gives up and pins the machine
 * at the safe default level.
 */
TEST_F(FaultInjectionTest, AppDrainTriggersWatchdogPinFallback)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});

    FaultInjector fi(23);
    fi.armProbability(Point::AppDrain, 1.0);

    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    params.searchBudgetWindows = 10;
    // No fallbackCombo: the policy must fall back to the pin level.
    PbsPolicy policy(params);

    driveInjected(gpu, policy, &fi, 20);

    EXPECT_GE(policy.degradedWindows(), 1u);
    EXPECT_GE(policy.searchesAbandoned(), 1u);
    EXPECT_TRUE(policy.converged());
    ASSERT_EQ(policy.currentCombo().size(), 2u);
    for (std::uint32_t tlp : policy.currentCombo())
        EXPECT_EQ(tlp, 4u) << "Guideline-1 pin level";
}

/** Unit check: PbsSearch itself gives up on consecutive bad samples. */
TEST(PbsSearchDegraded, GivesUpAfterConsecutiveInvalidSamples)
{
    PbsSearch search(EbObjective::WS, 2, {1, 2, 4}, ScalingMode::None);
    ASSERT_TRUE(search.nextCombo().has_value());

    EbSample bad;
    bad.apps.resize(2);
    bad.degraded = true;
    for (std::uint32_t i = 0;
         i < PbsSearch::kMaxConsecutiveInvalid && !search.done(); ++i)
        search.observe(bad);

    EXPECT_TRUE(search.done());
    EXPECT_TRUE(search.failed());
    EXPECT_EQ(search.invalidSamples(),
              PbsSearch::kMaxConsecutiveInvalid);
    EXPECT_EQ(search.best(), (TlpCombo{4, 4}))
        << "give-up combination is the safe pin level";
}

/** A lone degraded window only delays the search, never corrupts it. */
TEST(PbsSearchDegraded, RecoversWhenGoodSamplesResume)
{
    PbsSearch search(EbObjective::WS, 2, {1, 2, 4}, ScalingMode::None);

    EbSample bad;
    bad.apps.resize(2);
    bad.degraded = true;

    std::uint32_t guard = 0;
    while (!search.done() && guard++ < 200) {
        const auto combo = search.nextCombo();
        ASSERT_TRUE(combo.has_value());
        // Every other observation is degraded noise.
        if (guard % 2 == 0) {
            search.observe(bad);
            continue;
        }
        EbSample good;
        good.apps.resize(2);
        for (std::size_t a = 0; a < 2; ++a) {
            good.apps[a].bw = 0.1 * static_cast<double>((*combo)[a]);
            good.apps[a].l1Mr = 0.5;
            good.apps[a].l2Mr = 0.5;
        }
        good.totalBw = good.apps[0].bw + good.apps[1].bw;
        good.tlp = *combo;
        search.observe(good);
    }

    EXPECT_TRUE(search.done());
    EXPECT_FALSE(search.failed()) << "interleaved noise is survivable";
    EXPECT_GT(search.invalidSamples(), 0u);
}

} // namespace
} // namespace ebm
