/**
 * @file
 * The sweep supervisor: clean runs settle immediately, crashed
 * workers (nonzero exit or signal death) are restarted until they
 * succeed, poison workers stop at the restart budget, hung workers
 * (silent heartbeat file) are SIGKILLed and replaced, and workers
 * inherit EBM_WORKER_HEARTBEAT pointing at their slot's file.
 *
 * Worker bodies run in forked children, so they communicate only
 * through exit codes — never gtest assertions.
 */
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "harness/sweep_supervisor.hpp"

namespace ebm {
namespace {

void
removeDirTree(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d != nullptr) {
        while (struct dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

class SweepSupervisorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        hb_dir_ = ::testing::TempDir() + "ebm_sup_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name() +
                  ".hb";
        removeDirTree(hb_dir_);
    }

    void TearDown() override { removeDirTree(hb_dir_); }

    /** Fast-settling options for tests (no hang detection). */
    static SweepSupervisor::Options
    fastOptions(std::uint32_t workers)
    {
        SweepSupervisor::Options o;
        o.workers = workers;
        o.backoffBase = std::chrono::milliseconds(5);
        o.backoffCap = std::chrono::milliseconds(20);
        return o;
    }

    std::string hb_dir_;
};

TEST_F(SweepSupervisorTest, CleanWorkersSettleWithoutRestarts)
{
    SweepSupervisor sup(fastOptions(3));
    const SweepSupervisor::Report report =
        sup.run([](std::uint32_t, std::uint32_t) { return 0; });

    EXPECT_TRUE(report.allSucceeded);
    EXPECT_EQ(report.totalRestarts, 0u);
    EXPECT_EQ(report.totalHangKills, 0u);
    ASSERT_EQ(report.workers.size(), 3u);
    for (const SweepSupervisor::WorkerReport &w : report.workers) {
        EXPECT_TRUE(w.succeeded);
        EXPECT_FALSE(w.budgetExhausted);
        EXPECT_EQ(w.restarts, 0u);
    }
}

TEST_F(SweepSupervisorTest, CrashingWorkerIsRestartedUntilItSucceeds)
{
    SweepSupervisor sup(fastOptions(2));
    const SweepSupervisor::Report report =
        sup.run([](std::uint32_t slot, std::uint32_t attempt) {
            // Slot 0 needs three lives; slot 1 is clean.
            if (slot == 0 && attempt < 2)
                return 9;
            return 0;
        });

    EXPECT_TRUE(report.allSucceeded);
    EXPECT_EQ(report.totalRestarts, 2u);
    EXPECT_EQ(report.workers[0].restarts, 2u);
    EXPECT_TRUE(report.workers[0].succeeded);
    EXPECT_EQ(report.workers[1].restarts, 0u);
}

TEST_F(SweepSupervisorTest, SignalDeathCountsAsACrash)
{
    SweepSupervisor sup(fastOptions(1));
    const SweepSupervisor::Report report =
        sup.run([](std::uint32_t, std::uint32_t attempt) {
            if (attempt == 0)
                ::kill(::getpid(), SIGKILL);
            return 0;
        });

    EXPECT_TRUE(report.allSucceeded);
    EXPECT_EQ(report.workers[0].restarts, 1u)
        << "a SIGKILLed worker gets a replacement";
}

TEST_F(SweepSupervisorTest, PoisonWorkerStopsAtTheRestartBudget)
{
    SweepSupervisor::Options o = fastOptions(2);
    o.maxRestarts = 3;
    SweepSupervisor sup(o);
    const SweepSupervisor::Report report =
        sup.run([](std::uint32_t slot, std::uint32_t) {
            return slot == 0 ? 7 : 0; // Slot 0 fails every life.
        });

    EXPECT_FALSE(report.allSucceeded);
    EXPECT_TRUE(report.workers[0].budgetExhausted);
    EXPECT_FALSE(report.workers[0].succeeded);
    EXPECT_EQ(report.workers[0].restarts, 3u)
        << "budget bounds replacement launches, not lives";
    EXPECT_TRUE(report.workers[1].succeeded)
        << "one poison slot must not poison its peers";
    EXPECT_FALSE(report.summaryLine().empty());
}

TEST_F(SweepSupervisorTest, HungWorkerIsKilledAndReplaced)
{
    SweepSupervisor::Options o = fastOptions(1);
    o.heartbeatDir = hb_dir_;
    o.hangTimeout = std::chrono::milliseconds(150);
    SweepSupervisor sup(o);

    const SweepSupervisor::Report report =
        sup.run([](std::uint32_t, std::uint32_t attempt) {
            if (attempt == 0) {
                // Alive but stuck: never touches the heartbeat file.
                for (;;)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
            }
            return 0;
        });

    EXPECT_TRUE(report.allSucceeded);
    EXPECT_GE(report.totalHangKills, 1u);
    EXPECT_GE(report.workers[0].restarts, 1u)
        << "the hang kill must be followed by a replacement";
}

TEST_F(SweepSupervisorTest, WorkersInheritTheirSlotHeartbeatPath)
{
    SweepSupervisor::Options o = fastOptions(2);
    o.heartbeatDir = hb_dir_;
    o.hangTimeout = std::chrono::seconds(30); // Never fires here.
    SweepSupervisor sup(o);

    const std::string p0 = sup.heartbeatPath(0);
    const std::string p1 = sup.heartbeatPath(1);
    ASSERT_NE(p0, p1);

    const SweepSupervisor::Report report =
        sup.run([&sup](std::uint32_t slot, std::uint32_t) {
            const char *env = std::getenv("EBM_WORKER_HEARTBEAT");
            if (env == nullptr)
                return 2;
            return env == sup.heartbeatPath(slot) ? 0 : 3;
        });

    EXPECT_TRUE(report.allSucceeded)
        << "children must see EBM_WORKER_HEARTBEAT = their slot file";

    // The supervisor pre-touches each slot's file, so both exist.
    struct stat st = {};
    EXPECT_EQ(::stat(p0.c_str(), &st), 0);
    EXPECT_EQ(::stat(p1.c_str(), &st), 0);
}

} // namespace
} // namespace ebm
