/**
 * @file
 * Advisor serving daemon contract:
 *   - cold queries return a ticket, the async fill resolves it, and a
 *     repeat is a memo hit; argument order is canonicalized;
 *   - N concurrent requests for one cold pair dispatch exactly one
 *     simulation (single-flight);
 *   - a restarted daemon re-serves a previously filled pair straight
 *     from the store (no fill dispatched);
 *   - request validation rejects unknown/duplicate apps and malformed
 *     options with the documented error vocabulary;
 *   - the full socket path works end to end, including garbled-frame
 *     rejection and the SHUTDOWN verb.
 *
 * Sweeps use a 2-level ladder (4 combos) on the tiny machine so the
 * one real fill each test needs stays in the fast lane.
 */
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "harness/advisor_service.hpp"
#include "harness/disk_cache.hpp"
#include "harness/runner.hpp"
#include "harness/warm_state.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {
namespace {

class AdvisorServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = ::testing::TempDir() + "ebm_advisor_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        cache_path_ = stem_ + ".store";
        removeAll();
        runner_.emplace(test::tinyConfig(2), test::tinyOptions());
    }

    void TearDown() override { removeAll(); }

    void
    removeAll()
    {
        std::remove(cache_path_.c_str());
        std::remove((cache_path_ + ".tmp").c_str());
        std::remove((cache_path_ + ".quarantined").c_str());
    }

    AdvisorService::Options
    fastOpts() const
    {
        AdvisorService::Options o{};
        o.levels = {1, 2}; // 4 combos per pair.
        o.fillJobs = 1;
        return o;
    }

    std::string stem_;
    std::string cache_path_;
    std::optional<Runner> runner_;
};

TEST_F(AdvisorServiceTest, ColdMissFillsAsyncThenServesFromMemo)
{
    DiskCache cache(cache_path_);
    AdvisorService svc(*runner_, cache, fastOpts());

    const auto first = svc.advise("BLK", "TRD", 0);
    ASSERT_EQ(first.state, AdvisorService::State::Pending);
    ASSERT_NE(first.ticket, 0u);

    svc.drainFills();
    const auto polled = svc.poll(first.ticket);
    ASSERT_EQ(polled.state, AdvisorService::State::Ready);
    EXPECT_EQ(polled.answer.pair, "BLK_TRD");
    EXPECT_EQ(polled.answer.source, AdvisorService::Source::Fresh);
    ASSERT_EQ(polled.answer.ws.tlp.size(), 2u);
    EXPECT_GT(polled.answer.ws.ws, 0.0);
    ASSERT_EQ(polled.answer.bestAloneTlp.size(), 2u);

    // Repeat — and the swapped argument order — are memo hits on the
    // one canonical pair.
    for (const auto &apps :
         {std::pair<std::string, std::string>{"BLK", "TRD"},
          std::pair<std::string, std::string>{"TRD", "BLK"}}) {
        const auto again = svc.advise(apps.first, apps.second, 0);
        ASSERT_EQ(again.state, AdvisorService::State::Ready);
        EXPECT_EQ(again.answer.pair, "BLK_TRD");
        EXPECT_EQ(again.answer.source, AdvisorService::Source::Memo);
        EXPECT_EQ(again.answer.ws.tlp, polled.answer.ws.tlp);
    }

    const auto s = svc.stats();
    EXPECT_EQ(s.fillsDispatched, 1u);
    EXPECT_EQ(s.fillsCompleted, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.inflight, 0u);
}

TEST_F(AdvisorServiceTest, FillsReportWarmCheckpointTraffic)
{
    // A cold fill sweeps many combinations of few machine shapes, so
    // with the warm-state cache on it must record both misses (first
    // run of a shape computes the prefix) and hits (every later combo
    // of that shape forks from the capture).
    WarmStateCache::instance().clear();
    WarmStateCache::setEnabled(true);
    DiskCache cache(cache_path_);
    AdvisorService svc(*runner_, cache, fastOpts());
    const auto r = svc.advise("BLK", "TRD", 0);
    ASSERT_EQ(r.state, AdvisorService::State::Pending);
    svc.drainFills();

    const auto s = svc.stats();
    EXPECT_EQ(s.fillsCompleted, 1u);
    EXPECT_GE(s.snapshotMisses, 1u);
    EXPECT_GE(s.snapshotHits, 1u)
        << "combos sharing a shape must fork, not re-warm";
    WarmStateCache::instance().clear();
}

TEST_F(AdvisorServiceTest, BlockingWaitResolvesWithinDeadline)
{
    DiskCache cache(cache_path_);
    AdvisorService svc(*runner_, cache, fastOpts());
    const auto r = svc.advise("BLK", "TRD", 10 * 60 * 1000);
    ASSERT_EQ(r.state, AdvisorService::State::Ready);
    EXPECT_EQ(r.answer.source, AdvisorService::Source::Fresh);
    EXPECT_EQ(r.answer.pair, "BLK_TRD");
}

/**
 * The single-flight acceptance test: many threads hammer one cold
 * pair; exactly one fill is dispatched, every ticket resolves Ready.
 */
TEST_F(AdvisorServiceTest, ConcurrentColdKeyDispatchesExactlyOneFill)
{
    DiskCache cache(cache_path_);
    AdvisorService svc(*runner_, cache, fastOpts());

    constexpr unsigned kClients = 8;
    std::vector<std::uint64_t> tickets(kClients, 0);
    std::atomic<unsigned> ready{0};
    std::vector<std::thread> clients;
    for (unsigned i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            const auto r = svc.advise("BLK", "TRD", 0);
            if (r.state == AdvisorService::State::Ready)
                ++ready; // raced past the fill: also fine.
            else if (r.state == AdvisorService::State::Pending)
                tickets[i] = r.ticket;
        });
    }
    for (auto &c : clients)
        c.join();
    svc.drainFills();

    for (unsigned i = 0; i < kClients; ++i) {
        if (tickets[i] == 0)
            continue;
        const auto r = svc.poll(tickets[i]);
        ASSERT_EQ(r.state, AdvisorService::State::Ready)
            << "client " << i;
        ++ready;
    }
    EXPECT_EQ(ready.load(), kClients);

    const auto s = svc.stats();
    EXPECT_EQ(s.fillsDispatched, 1u)
        << "N concurrent cold queries must dispatch one simulation";
    EXPECT_EQ(s.fillsCompleted, 1u);
}

/** Restarted daemon: the store, not a fill, answers the second life. */
TEST_F(AdvisorServiceTest, RestartServesFilledPairFromStore)
{
    {
        DiskCache cache(cache_path_);
        AdvisorService svc(*runner_, cache, fastOpts());
        const auto r = svc.advise("BLK", "TRD", 10 * 60 * 1000);
        ASSERT_EQ(r.state, AdvisorService::State::Ready);
        EXPECT_TRUE(cache.compact());
    }

    DiskCache cache(cache_path_);
    AdvisorService svc(*runner_, cache, fastOpts());
    const auto r = svc.advise("BLK", "TRD", 0);
    ASSERT_EQ(r.state, AdvisorService::State::Ready);
    EXPECT_EQ(r.answer.source, AdvisorService::Source::Store);
    EXPECT_EQ(r.answer.pair, "BLK_TRD");
    const auto s = svc.stats();
    EXPECT_EQ(s.fillsDispatched, 0u);
    EXPECT_EQ(s.hits, 1u);
}

TEST_F(AdvisorServiceTest, RejectsUnknownAndDuplicateApps)
{
    DiskCache cache(cache_path_);
    AdvisorService svc(*runner_, cache, fastOpts());

    const auto unknown = svc.advise("BLK", "NOSUCH", 0);
    ASSERT_EQ(unknown.state, AdvisorService::State::Failed);
    EXPECT_EQ(unknown.error.code, Errc::InvalidArgument);
    EXPECT_NE(unknown.error.message.find("NOSUCH"),
              std::string::npos);

    const auto dup = svc.advise("BLK", "BLK", 0);
    ASSERT_EQ(dup.state, AdvisorService::State::Failed);
    EXPECT_EQ(dup.error.code, Errc::InvalidArgument);

    const auto bogus = svc.poll(999);
    ASSERT_EQ(bogus.state, AdvisorService::State::Failed);
    EXPECT_EQ(bogus.error.code, Errc::InvalidArgument);

    const auto s = svc.stats();
    EXPECT_EQ(s.fillsDispatched, 0u);
}

// ---------------------------------------------------------------------
// Request parsing/validation through AdvisorServer::handleRequest
// (no sockets: the wire layers are covered separately).
// ---------------------------------------------------------------------

class AdvisorRequestTest : public AdvisorServiceTest
{
  protected:
    void
    SetUp() override
    {
        AdvisorServiceTest::SetUp();
        cache_.emplace(cache_path_);
        svc_.emplace(*runner_, *cache_, fastOpts());
        AdvisorServer::Options o;
        o.socketPath = stem_ + ".sock"; // never started; unused.
        server_.emplace(*svc_, o);
    }

    void
    TearDown() override
    {
        server_.reset();
        svc_.reset();
        cache_.reset();
        AdvisorServiceTest::TearDown();
    }

    std::optional<DiskCache> cache_;
    std::optional<AdvisorService> svc_;
    std::optional<AdvisorServer> server_;
};

TEST_F(AdvisorRequestTest, ValidatesVerbsAndOptions)
{
    auto &srv = *server_;
    EXPECT_EQ(srv.handleRequest("PING"), "OK PONG");
    EXPECT_EQ(srv.handleRequest(""),
              "ERROR bad-request empty request");
    EXPECT_EQ(srv.handleRequest("FROB X"),
              "ERROR bad-request unknown verb 'FROB'");
    EXPECT_EQ(srv.handleRequest("ADVISE BLK"),
              "ERROR bad-request ADVISE needs two application names");

    const std::string unknown = srv.handleRequest("ADVISE BLK NOSUCH");
    EXPECT_EQ(unknown.rfind("ERROR unknown-app", 0), 0u) << unknown;

    const std::string dup = srv.handleRequest("ADVISE BLK BLK");
    EXPECT_EQ(dup.rfind("ERROR duplicate-app", 0), 0u) << dup;

    const std::string pair_dup =
        srv.handleRequest("PAIR BLK TRD BLK");
    EXPECT_EQ(pair_dup.rfind("ERROR duplicate-app", 0), 0u)
        << pair_dup;

    const std::string bad_obj =
        srv.handleRequest("ADVISE BLK TRD OBJ XX");
    EXPECT_EQ(bad_obj.rfind("ERROR bad-request", 0), 0u) << bad_obj;

    // The strict shared parser: trailing garbage is rejected, not
    // truncated ("5x" is not 5 milliseconds).
    const std::string bad_wait =
        srv.handleRequest("ADVISE BLK TRD WAIT 5x");
    EXPECT_EQ(bad_wait.rfind("ERROR bad-request", 0), 0u) << bad_wait;
    const std::string dangling =
        srv.handleRequest("ADVISE BLK TRD WAIT");
    EXPECT_EQ(dangling.rfind("ERROR bad-request", 0), 0u) << dangling;

    const std::string bad_poll = srv.handleRequest("POLL notanumber");
    EXPECT_EQ(bad_poll.rfind("ERROR bad-request", 0), 0u) << bad_poll;
    const std::string unk_ticket = srv.handleRequest("POLL 4242");
    EXPECT_EQ(unk_ticket.rfind("ERROR unknown-ticket", 0), 0u)
        << unk_ticket;

    const std::string stats = srv.handleRequest("STATS");
    EXPECT_EQ(stats.rfind("OK STATS requests=", 0), 0u) << stats;
    EXPECT_NE(stats.find(" snapshot_hits="), std::string::npos)
        << stats;
    EXPECT_NE(stats.find(" snapshot_misses="), std::string::npos)
        << stats;
    // Nothing above may have started a simulation.
    EXPECT_EQ(svc_->stats().fillsDispatched, 0u);
}

TEST_F(AdvisorRequestTest, AdviseAndPollThroughRequestLayer)
{
    auto &srv = *server_;
    const std::string pending = srv.handleRequest("ADVISE TRD BLK");
    ASSERT_EQ(pending.rfind("PENDING ticket=", 0), 0u) << pending;
    EXPECT_NE(pending.find("pair=BLK_TRD"), std::string::npos)
        << pending;
    const std::string ticket = pending.substr(
        std::string("PENDING ticket=").size(),
        pending.find(' ', std::string("PENDING ticket=").size()) -
            std::string("PENDING ticket=").size());

    svc_->drainFills();
    const std::string done = srv.handleRequest("POLL " + ticket);
    ASSERT_EQ(done.rfind("OK ADVISE", 0), 0u) << done;
    EXPECT_NE(done.find("pair=BLK_TRD"), std::string::npos);
    EXPECT_NE(done.find("tlp="), std::string::npos);
    EXPECT_NE(done.find("source=fresh"), std::string::npos);

    const std::string warm = srv.handleRequest("ADVISE BLK TRD OBJ FI");
    ASSERT_EQ(warm.rfind("OK ADVISE", 0), 0u) << warm;
    EXPECT_NE(warm.find("obj=FI"), std::string::npos);
    EXPECT_NE(warm.find("source=memo"), std::string::npos);
}

// ---------------------------------------------------------------------
// Socket end to end.
// ---------------------------------------------------------------------

class AdvisorSocketTest : public AdvisorRequestTest
{
  protected:
    void
    SetUp() override
    {
        AdvisorRequestTest::SetUp();
        socket_path_ = stem_ + ".sock";
        AdvisorServer::Options o;
        o.socketPath = socket_path_;
        live_.emplace(*svc_, o);
        ASSERT_TRUE(live_->start().ok());
    }

    void
    TearDown() override
    {
        live_.reset();
        std::remove(socket_path_.c_str());
        AdvisorRequestTest::TearDown();
    }

    std::string socket_path_;
    std::optional<AdvisorServer> live_;
};

TEST_F(AdvisorSocketTest, ServesQueriesOverTheSocket)
{
    auto conn = netConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok()) << conn.error().message;
    const int fd = conn.value().get();
    servefmt::FrameReader reader;
    std::string reply;

    ASSERT_TRUE(servefmt::sendFrame(fd, "PING"));
    ASSERT_TRUE(servefmt::recvFrame(fd, reader, reply, 10000));
    EXPECT_EQ(reply, "OK PONG");

    // One blocking cold query straight through the socket.
    ASSERT_TRUE(
        servefmt::sendFrame(fd, "ADVISE BLK TRD WAIT 600000"));
    ASSERT_TRUE(servefmt::recvFrame(fd, reader, reply, 600000));
    ASSERT_EQ(reply.rfind("OK ADVISE", 0), 0u) << reply;
    EXPECT_NE(reply.find("pair=BLK_TRD"), std::string::npos);

    ASSERT_TRUE(servefmt::sendFrame(fd, "STATS"));
    ASSERT_TRUE(servefmt::recvFrame(fd, reader, reply, 10000));
    EXPECT_EQ(reply.rfind("OK STATS", 0), 0u) << reply;
    EXPECT_NE(reply.find("latency_samples="), std::string::npos);
}

TEST_F(AdvisorSocketTest, GarbledBytesGetErrorReplyAndDisconnect)
{
    auto conn = netConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    const int fd = conn.value().get();
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(netWriteFull(fd, junk, sizeof junk - 1));
    servefmt::FrameReader reader;
    std::string reply;
    ASSERT_TRUE(servefmt::recvFrame(fd, reader, reply, 10000));
    EXPECT_EQ(reply.rfind("ERROR bad-frame", 0), 0u) << reply;
    // The server closes after the diagnostic; the next read is EOF.
    EXPECT_FALSE(servefmt::recvFrame(fd, reader, reply, 10000));
}

TEST_F(AdvisorSocketTest, ShutdownVerbStopsTheServer)
{
    auto conn = netConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    const int fd = conn.value().get();
    servefmt::FrameReader reader;
    std::string reply;
    ASSERT_TRUE(servefmt::sendFrame(fd, "SHUTDOWN"));
    ASSERT_TRUE(servefmt::recvFrame(fd, reader, reply, 10000));
    EXPECT_EQ(reply, "OK BYE");
    live_->waitShutdownRequested();
    EXPECT_TRUE(live_->shutdownRequested());
    live_->stop();
    // The socket file is gone; a reconnect must fail.
    EXPECT_FALSE(netConnectUnix(socket_path_).ok());
}

} // namespace
} // namespace ebm
