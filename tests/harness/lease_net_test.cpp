/**
 * @file
 * The networked lease fabric in one process: a Coordinator over a
 * temp store, NetLeaseProvider clients over localhost TCP. Covers the
 * lease verbs (exclusivity, epochs, skip replication), wire-level
 * fencing (stale takeover, fenced heartbeat/release), the
 * disconnect-orphans-leases rule, record streaming (publish/fetch
 * with validation), handshake rejection of incompatible workers, a
 * record cut off mid-stream never reaching the store, and the RPC
 * latency receipts. Forked multi-worker acceptance lives in
 * test_distributed.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/net.hpp"
#include "common/wire.hpp"
#include "harness/coordinator.hpp"
#include "harness/disk_cache.hpp"
#include "harness/lease_net.hpp"
#include "harness/lease_provider.hpp"
#include "harness/store_format.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {
namespace {

using State = LeaseProvider::State;

NetLeaseProvider::Options
quickConnect()
{
    NetLeaseProvider::Options o;
    o.connectAttempts = 10;
    o.connectBackoff = std::chrono::milliseconds(20);
    o.rpcTimeout = std::chrono::milliseconds(5000);
    return o;
}

class LeaseNetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "ebm_net_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".cache";
        std::remove(path_.c_str());
        cache_ = std::make_unique<DiskCache>(path_);
    }

    void
    TearDown() override
    {
        coord_.reset();
        cache_.reset();
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    /** Start a coordinator on an ephemeral port. */
    Coordinator &
    startCoordinator(std::chrono::milliseconds stale =
                         std::chrono::milliseconds(0))
    {
        Coordinator::Options opts;
        opts.staleThreshold = stale;
        coord_ = std::make_unique<Coordinator>(*cache_, opts);
        const Status st = coord_->start();
        EXPECT_TRUE(st.ok()) << st.error().message;
        return *coord_;
    }

    std::unique_ptr<NetLeaseProvider>
    connectWorker()
    {
        auto p = NetLeaseProvider::connect(coord_->address(),
                                           quickConnect());
        EXPECT_NE(p, nullptr);
        return p;
    }

    std::string path_;
    std::unique_ptr<DiskCache> cache_;
    std::unique_ptr<Coordinator> coord_;
};

// ---------------------------------------------------------------------
// Lease verbs over the wire.
// ---------------------------------------------------------------------

TEST_F(LeaseNetTest, LeaseIsExclusiveUntilReleased)
{
    startCoordinator();
    auto a = connectWorker();
    auto b = connectWorker();

    EXPECT_EQ(a->peek("row"), State::Absent);
    EXPECT_TRUE(a->tryAcquire("row"));
    EXPECT_EQ(a->ownedEpoch("row"), 1u);
    EXPECT_FALSE(a->tryAcquire("row")) << "leases are exclusive";
    EXPECT_FALSE(b->tryAcquire("row"));
    EXPECT_EQ(b->peek("row"), State::Active);
    EXPECT_TRUE(a->heartbeat("row"));

    EXPECT_TRUE(a->release("row"));
    EXPECT_EQ(a->ownedEpoch("row"), 0u) << "released = not owned";
    EXPECT_EQ(b->peek("row"), State::Absent);
    EXPECT_TRUE(b->tryAcquire("row"));
    EXPECT_EQ(b->ownedEpoch("row"), 2u)
        << "every acquisition bumps the per-key epoch";
    EXPECT_TRUE(b->release("row"));

    const auto stats = coord_->stats();
    EXPECT_EQ(stats.acquiresGranted, 2u);
    EXPECT_GE(stats.acquiresDenied, 2u);
}

TEST_F(LeaseNetTest, DistinctKeysNeverContend)
{
    startCoordinator();
    auto a = connectWorker();
    EXPECT_TRUE(a->tryAcquire("row/a"));
    EXPECT_TRUE(a->tryAcquire("row/b"));
    EXPECT_TRUE(a->release("row/a"));
    EXPECT_TRUE(a->release("row/b"));
}

TEST_F(LeaseNetTest, SkipMarkerReplicatesAndExpires)
{
    startCoordinator(std::chrono::milliseconds(150));
    auto a = connectWorker();
    auto b = connectWorker();

    ASSERT_TRUE(a->tryAcquire("row"));
    EXPECT_TRUE(a->markSkipped("row"));
    EXPECT_EQ(b->peek("row"), State::Skipped)
        << "waiters replicate the skip";
    EXPECT_FALSE(b->tryAcquire("row"));

    // Past the staleness window the marker expires, so the next sweep
    // retries the row (never persist a failure).
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_EQ(b->peek("row"), State::Absent);
    EXPECT_TRUE(b->tryAcquire("row"));
    EXPECT_TRUE(b->release("row"));
    EXPECT_EQ(coord_->stats().skipsMarked, 1u);
}

TEST_F(LeaseNetTest, StaleOwnerIsFencedAfterTakeover)
{
    startCoordinator(std::chrono::milliseconds(100));
    auto owner = connectWorker();
    auto waiter = connectWorker();

    ASSERT_TRUE(owner->tryAcquire("row"));
    EXPECT_FALSE(waiter->breakStale("row"))
        << "a fresh lease must never be broken";

    // The owner goes silent past the window (no heartbeats).
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_EQ(waiter->peek("row"), State::Stale);
    EXPECT_TRUE(waiter->breakStale("row"));
    EXPECT_EQ(waiter->ownedEpoch("row"), 2u);

    // The resumed owner's epoch-carrying verbs are refused.
    EXPECT_FALSE(owner->heartbeat("row")) << "fenced heartbeat";
    EXPECT_FALSE(owner->release("row")) << "fenced release";
    EXPECT_EQ(waiter->peek("row"), State::Active)
        << "the new owner's lease survived the fenced release";
    EXPECT_TRUE(waiter->release("row"));

    const auto stats = coord_->stats();
    EXPECT_EQ(stats.takeovers, 1u);
    // One fenced op on the wire: the failed heartbeat drops the
    // owner's epoch locally, so the release fails client-side.
    EXPECT_GE(stats.fencedOps, 1u);
}

TEST_F(LeaseNetTest, DisconnectOrphansLeasesImmediately)
{
    // A generous window: the takeover below must come from the
    // orphan rule (connection death), not from mtime-style staleness.
    startCoordinator(std::chrono::seconds(60));
    auto doomed = connectWorker();
    auto waiter = connectWorker();

    ASSERT_TRUE(doomed->tryAcquire("row"));
    EXPECT_EQ(waiter->peek("row"), State::Active);

    doomed.reset(); // Connection drops (worker died mid-row).

    // The coordinator orphans the lease as the connection reaps;
    // waiters see STALE without waiting out the window.
    State s = State::Active;
    for (int i = 0; i < 200 && s == State::Active; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        s = waiter->peek("row");
    }
    EXPECT_EQ(s, State::Stale);
    EXPECT_TRUE(waiter->breakStale("row"));
    EXPECT_TRUE(waiter->release("row"));
    EXPECT_EQ(coord_->stats().orphanedLeases, 1u);
}

// ---------------------------------------------------------------------
// Record streaming.
// ---------------------------------------------------------------------

TEST_F(LeaseNetTest, PublishStreamsRecordAndFetchValidates)
{
    startCoordinator();
    auto a = connectWorker();
    auto b = connectWorker();

    const std::vector<double> values{1.5, 2.25, 0.125, 3.0, 42.0};
    EXPECT_EQ(b->fetch("combo/x", values.size()), std::nullopt);
    ASSERT_TRUE(a->tryAcquire("combo/x"));
    EXPECT_TRUE(a->publish("combo/x", values));
    EXPECT_TRUE(a->release("combo/x"));

    // Another worker assembles the row from the coordinator's store,
    // bit-exact.
    const auto got = b->fetch("combo/x", values.size());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, values);

    // getValidated's contract holds over the wire: a wrong-shape read
    // is a miss, never a crash.
    EXPECT_EQ(b->fetch("combo/x", values.size() + 1), std::nullopt);

    // The record reached the coordinator's own DiskCache writer.
    const auto direct = cache_->get("combo/x");
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(*direct, values);

    const auto stats = coord_->stats();
    EXPECT_EQ(stats.recordsCommitted, 1u);
    EXPECT_GT(stats.recordBytes, 0u);
    // The wrong-shape fetch is a coordinator-side HIT rejected by
    // client validation, so: one true miss, two served hits.
    EXPECT_GE(stats.fetchMisses, 1u);
    EXPECT_GE(stats.fetchHits, 2u);
}

TEST_F(LeaseNetTest, PartialRecordStreamNeverReachesStore)
{
    startCoordinator(std::chrono::seconds(60));
    auto waiter = connectWorker();

    // A raw protocol client: acquire the row, then die halfway
    // through streaming the record — the kill-mid-record-stream case
    // without needing a second process.
    auto fd = netConnectTcp("127.0.0.1", coord_->port());
    ASSERT_TRUE(fd.ok());
    wire::FrameReader reader;
    std::string reply;
    ASSERT_TRUE(wire::sendFrame(fd.value().get(), "ACQ combo/doomed"));
    ASSERT_TRUE(wire::recvFrame(fd.value().get(), reader, reply, 5000));
    ASSERT_EQ(reply.rfind("OK ", 0), 0u);

    std::string record = "PUT\n";
    storefmt::appendFrame(record, "combo/doomed", {1.0, 2.0, 3.0});
    const std::string framed = wire::encodeFrame(record);
    // Half the frame, then the connection dies (SIGKILL semantics: no
    // goodbye, just a closed socket).
    ASSERT_TRUE(netWriteFull(fd.value().get(), framed.data(),
                             framed.size() / 2));
    fd.value().reset();

    // The torn record must never reach the store — the wire frame
    // never reassembled, so unlike a torn file append there is no
    // tail to truncate — and the dead worker's lease is orphaned so
    // the row is immediately recoverable.
    State s = State::Active;
    for (int i = 0; i < 200 && s == State::Active; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        s = waiter->peek("combo/doomed");
    }
    EXPECT_EQ(s, State::Stale);
    EXPECT_EQ(cache_->get("combo/doomed"), std::nullopt);
    EXPECT_EQ(coord_->stats().recordsCommitted, 0u);
    EXPECT_TRUE(waiter->breakStale("combo/doomed"));
    EXPECT_TRUE(waiter->publish("combo/doomed", {9.0}));
    EXPECT_TRUE(waiter->release("combo/doomed"));
    const auto got = cache_->get("combo/doomed");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->size(), 1u);
}

TEST_F(LeaseNetTest, CorruptRecordPayloadIsRejected)
{
    startCoordinator();
    auto fd = netConnectTcp("127.0.0.1", coord_->port());
    ASSERT_TRUE(fd.ok());
    std::string record = "PUT\n";
    storefmt::appendFrame(record, "combo/bad", {1.0});
    record[record.size() - 1] ^= 0x01; // Corrupt the storefmt CRC.
    wire::FrameReader reader;
    std::string reply;
    ASSERT_TRUE(wire::sendFrame(fd.value().get(), record));
    ASSERT_TRUE(wire::recvFrame(fd.value().get(), reader, reply, 5000));
    EXPECT_EQ(reply.rfind("ERROR", 0), 0u);
    EXPECT_EQ(cache_->get("combo/bad"), std::nullopt);
    EXPECT_EQ(coord_->stats().badFrames, 1u);
}

// ---------------------------------------------------------------------
// Handshake and plumbing.
// ---------------------------------------------------------------------

TEST_F(LeaseNetTest, HandshakeRefusesIncompatibleWorkers)
{
    startCoordinator();
    auto fd = netConnectTcp("127.0.0.1", coord_->port());
    ASSERT_TRUE(fd.ok());
    wire::FrameReader reader;
    std::string reply;
    ASSERT_TRUE(wire::sendFrame(fd.value().get(),
                                "HELLO wrong-abi-fingerprint 1"));
    ASSERT_TRUE(wire::recvFrame(fd.value().get(), reader, reply, 5000));
    EXPECT_EQ(reply.rfind("ERROR", 0), 0u)
        << "a foreign machine's records must never reach the store";

    ASSERT_TRUE(wire::sendFrame(
        fd.value().get(), "HELLO " + DiskCache::machineFingerprint() +
                              " 999999"));
    ASSERT_TRUE(wire::recvFrame(fd.value().get(), reader, reply, 5000));
    EXPECT_EQ(reply.rfind("ERROR", 0), 0u)
        << "catalog-version mismatch must be refused";
}

TEST_F(LeaseNetTest, HandshakeReportsStalenessWindow)
{
    startCoordinator(std::chrono::milliseconds(1234));
    auto a = connectWorker();
    EXPECT_EQ(a->coordinatorStaleMs(),
              std::chrono::milliseconds(1234));
}

TEST_F(LeaseNetTest, MakeLeaseProviderSelectsNetMode)
{
    startCoordinator();
    ::setenv("EBM_COORDINATOR", coord_->address().c_str(), 1);
    auto lease = makeLeaseProvider(*cache_);
    ::unsetenv("EBM_COORDINATOR");
    ASSERT_NE(lease, nullptr);
    EXPECT_STREQ(lease->kind(), "net");
    EXPECT_TRUE(lease->tryAcquire("row"));
    EXPECT_TRUE(lease->release("row"));
}

TEST_F(LeaseNetTest, UnreachableCoordinatorDegradesToNull)
{
    // Port 1 on localhost refuses connections; makeLeaseProvider must
    // warn and return null (standalone sweep), never hang or throw.
    // Shrink the connect-retry budget so the test stays fast.
    ::setenv("EBM_COORDINATOR", "127.0.0.1:1", 1);
    ::setenv("EBM_NET_CONNECT_ATTEMPTS", "2", 1);
    ::setenv("EBM_NET_CONNECT_BACKOFF_MS", "10", 1);
    auto lease = makeLeaseProvider(*cache_);
    ::unsetenv("EBM_COORDINATOR");
    ::unsetenv("EBM_NET_CONNECT_ATTEMPTS");
    ::unsetenv("EBM_NET_CONNECT_BACKOFF_MS");
    EXPECT_EQ(lease, nullptr);
}

TEST_F(LeaseNetTest, RpcLatencyIsRecorded)
{
    startCoordinator();
    auto a = connectWorker();
    for (int i = 0; i < 32; ++i) {
        ASSERT_TRUE(a->tryAcquire("k" + std::to_string(i)));
        ASSERT_TRUE(a->release("k" + std::to_string(i)));
    }
    const auto stats = coord_->stats();
    EXPECT_GE(stats.rpcs, 64u);
    EXPECT_GT(stats.rpcP50Us, 0.0);
    EXPECT_GE(stats.rpcP99Us, stats.rpcP50Us);
    EXPECT_FALSE(stats.summaryLine().empty());
}

} // namespace
} // namespace ebm
