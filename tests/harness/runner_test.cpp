#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dyncta.hpp"
#include "core/tlp_policy.hpp"

namespace ebm {
namespace {

class RunnerTest : public ::testing::Test
{
  protected:
    RunnerTest() : runner_(test::tinyConfig(2), test::tinyOptions()) {}

    std::vector<AppProfile> apps_ = {test::streamingApp(),
                                     test::cacheApp()};
    Runner runner_;
};

TEST_F(RunnerTest, StaticRunProducesPerAppStats)
{
    const RunResult r = runner_.runStatic(apps_, {4, 4});
    ASSERT_EQ(r.apps.size(), 2u);
    for (const AppRunStats &a : r.apps) {
        EXPECT_GT(a.ipc, 0.0);
        EXPECT_GE(a.bw, 0.0);
        EXPECT_GT(a.l1Mr, 0.0);
        EXPECT_LE(a.l1Mr, 1.0);
        EXPECT_LE(a.l2Mr, 1.0);
    }
    EXPECT_EQ(r.finalTlp, (TlpCombo{4, 4}));
    EXPECT_EQ(r.measuredCycles, test::tinyOptions().measureCycles);
}

TEST_F(RunnerTest, DeterministicAcrossInvocations)
{
    const RunResult a = runner_.runStatic(apps_, {4, 4});
    const RunResult b = runner_.runStatic(apps_, {4, 4});
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_DOUBLE_EQ(a.apps[i].ipc, b.apps[i].ipc);
        EXPECT_DOUBLE_EQ(a.apps[i].bw, b.apps[i].bw);
        EXPECT_DOUBLE_EQ(a.apps[i].l1Mr, b.apps[i].l1Mr);
    }
}

TEST_F(RunnerTest, DifferentCombosDiffer)
{
    const RunResult a = runner_.runStatic(apps_, {1, 1});
    const RunResult b = runner_.runStatic(apps_, {8, 8});
    EXPECT_NE(a.apps[0].ipc, b.apps[0].ipc);
}

TEST_F(RunnerTest, WarmupExcludedFromMeasurement)
{
    // A run measured after warmup must not report the cold-cache
    // miss rate; compare against a no-warmup runner.
    RunOptions cold = test::tinyOptions();
    cold.warmupCycles = 0;
    Runner cold_runner(test::tinyConfig(2), cold);
    const RunResult warm = runner_.runStatic(apps_, {4, 4});
    const RunResult coldr = cold_runner.runStatic(apps_, {4, 4});
    EXPECT_LE(warm.apps[1].l1Mr, coldr.apps[1].l1Mr + 0.02)
        << "warmed caches cannot look colder";
}

TEST_F(RunnerTest, RunAloneUsesPerAppCoreShare)
{
    // A compute-bound app scales with core count, so the half-machine
    // alone run must trail a full-machine solo run (streaming apps
    // would be bandwidth-limited and could not show the difference).
    const AppProfile compute = test::computeApp();
    const RunResult r = runner_.runAlone(compute, 4);
    ASSERT_EQ(r.apps.size(), 1u);
    EXPECT_GT(r.apps[0].ipc, 0.0);
    GpuConfig full = test::tinyConfig(1);
    Runner full_runner(full, test::tinyOptions());
    const RunResult full_r = full_runner.runStatic({compute}, {4});
    EXPECT_LT(r.apps[0].ipc, full_r.apps[0].ipc);
}

TEST_F(RunnerTest, PolicyRunInvokesWindows)
{
    DynCta policy;
    const RunResult r = runner_.run(apps_, policy);
    ASSERT_EQ(r.apps.size(), 2u);
    EXPECT_GT(r.apps[0].ipc, 0.0);
}

TEST_F(RunnerTest, RelaunchIntervalTriggersPolicyCallback)
{
    class CountingPolicy : public StaticTlpPolicy
    {
      public:
        CountingPolicy() : StaticTlpPolicy("count", {4, 4}) {}
        void
        onKernelRelaunch(Gpu &, Cycle) override
        {
            ++relaunches;
        }
        std::uint32_t relaunches = 0;
    };

    RunOptions opts = test::tinyOptions();
    opts.relaunchInterval = 2000;
    Runner runner(test::tinyConfig(2), opts);
    CountingPolicy policy;
    runner.run(apps_, policy);
    const Cycle total = opts.warmupCycles + opts.measureCycles;
    EXPECT_EQ(policy.relaunches, total / opts.relaunchInterval);
}

TEST_F(RunnerTest, FingerprintStableForSameConfig)
{
    Runner other(test::tinyConfig(2), test::tinyOptions());
    EXPECT_EQ(runner_.fingerprint(), other.fingerprint());
}

TEST_F(RunnerTest, FingerprintChangesWithConfig)
{
    GpuConfig cfg = test::tinyConfig(2);
    cfg.l1.sizeBytes *= 2;
    Runner other(cfg, test::tinyOptions());
    EXPECT_NE(runner_.fingerprint(), other.fingerprint());
}

TEST_F(RunnerTest, FingerprintChangesWithOptions)
{
    RunOptions opts = test::tinyOptions();
    opts.measureCycles += 1000;
    Runner other(test::tinyConfig(2), opts);
    EXPECT_NE(runner_.fingerprint(), other.fingerprint());
}

TEST_F(RunnerTest, UnequalCoreShareSlowsSmallerApp)
{
    const RunResult even = runner_.runStatic(apps_, {4, 4});
    const RunResult skewed = runner_.runStatic(apps_, {4, 4}, {3, 1});
    EXPECT_LT(skewed.apps[1].ipc, even.apps[1].ipc)
        << "one core instead of two must reduce throughput";
}

TEST_F(RunnerTest, TotalBwIsSumOfApps)
{
    const RunResult r = runner_.runStatic(apps_, {8, 8});
    EXPECT_NEAR(r.totalBw, r.apps[0].bw + r.apps[1].bw, 1e-12);
    EXPECT_LE(r.totalBw, 1.0);
}

} // namespace
} // namespace ebm
