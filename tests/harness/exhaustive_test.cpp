#include "harness/exhaustive.hpp"

#include <cstdio>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

/** Hand-built two-combo table with known metric values. */
ComboTable
syntheticTable()
{
    ComboTable table;
    table.levels = {1, 2};
    auto add = [&table](TlpCombo combo, double ipc0, double ipc1,
                        double eb0, double eb1) {
        RunResult r;
        r.apps.resize(2);
        r.apps[0].ipc = ipc0;
        r.apps[1].ipc = ipc1;
        r.apps[0].bw = eb0; // cmr 1 -> eb == bw.
        r.apps[1].bw = eb1;
        r.finalTlp = combo;
        table.combos.push_back(std::move(combo));
        table.results.push_back(std::move(r));
    };
    add({1, 1}, 1.0, 1.0, 0.2, 0.2);
    add({2, 1}, 2.0, 0.4, 0.5, 0.1);
    add({1, 2}, 0.4, 2.0, 0.1, 0.5);
    add({2, 2}, 1.2, 1.2, 0.3, 0.3);
    return table;
}

TEST(ComboTableUnit, IndexOfFindsCombos)
{
    const ComboTable t = syntheticTable();
    EXPECT_EQ(t.indexOf({1, 1}), 0u);
    EXPECT_EQ(t.indexOf({2, 2}), 3u);
}

TEST(ComboTableUnitDeath, MissingComboPanics)
{
    const ComboTable t = syntheticTable();
    EXPECT_EBM_FATAL(t.indexOf({8, 8}), "not in table");
}

TEST(ExhaustiveArgmax, SdWsPicksHighestSumOfSlowdowns)
{
    const ComboTable t = syntheticTable();
    // alone ipcs (2, 2): SDs: (1,1)->1; (2,1)->1.2; (1,2)->1.2;
    // (2,2)->1.2. Tie broken by first max: (2,1).
    const TlpCombo c =
        Exhaustive::argmax(t, OptTarget::SdWS, {2.0, 2.0});
    EXPECT_DOUBLE_EQ(
        Exhaustive::value(t, c, OptTarget::SdWS, {2.0, 2.0}), 1.2);
}

TEST(ExhaustiveArgmax, SdFiPrefersBalance)
{
    const ComboTable t = syntheticTable();
    const TlpCombo c =
        Exhaustive::argmax(t, OptTarget::SdFI, {2.0, 2.0});
    // (1,1) and (2,2) are perfectly fair; (1,1) comes first.
    EXPECT_DOUBLE_EQ(
        Exhaustive::value(t, c, OptTarget::SdFI, {2.0, 2.0}), 1.0);
}

TEST(ExhaustiveArgmax, EbWsIgnoresAloneInfo)
{
    const ComboTable t = syntheticTable();
    const TlpCombo c = Exhaustive::argmax(t, OptTarget::EbWS);
    EXPECT_EQ(c, (TlpCombo{2, 1}))
        << "(2,1) and (1,2) tie at 0.6; first wins";
}

TEST(ExhaustiveArgmax, EbFiWithScale)
{
    const ComboTable t = syntheticTable();
    // Scale app 0 by 5: (2,1) has scaled EBs (0.1, 0.1) -> FI 1.
    const TlpCombo c =
        Exhaustive::argmax(t, OptTarget::EbFI, {}, {5.0, 1.0});
    EXPECT_EQ(c, (TlpCombo{2, 1}));
}

TEST(ExhaustiveArgmax, SumIpcTarget)
{
    const ComboTable t = syntheticTable();
    const TlpCombo c = Exhaustive::argmax(t, OptTarget::SumIpc);
    EXPECT_DOUBLE_EQ(
        Exhaustive::value(t, c, OptTarget::SumIpc), 2.4);
}

TEST(ExhaustiveArgmaxDeath, SdTargetWithoutAloneIpcsIsFatal)
{
    const ComboTable t = syntheticTable();
    EXPECT_EBM_FATAL(Exhaustive::argmax(t, OptTarget::SdWS),
                 "alone IPCs");
}

class ExhaustiveSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Per-test path: gtest_discover_tests runs each TEST_F as its
        // own ctest entry, so under `ctest -j` two of these can be
        // live at once — a shared file would let one test's SetUp
        // unlink the other's store mid-sweep.
        cache_path_ = ::testing::TempDir() + "ebm_sweep_cache_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      ".txt";
        std::remove(cache_path_.c_str());
    }

    void TearDown() override { std::remove(cache_path_.c_str()); }

    std::string cache_path_;
};

TEST_F(ExhaustiveSweepTest, SweepEnumeratesAllCombos)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    DiskCache cache(cache_path_);
    Exhaustive ex(runner, cache);

    // BLK_TRD resolves from the catalog; tiny ladder for speed.
    const Workload wl = makePair("BLK", "TRD");
    const ComboTable t = ex.sweep(wl, {1, 4});
    EXPECT_EQ(t.combos.size(), 4u);
    EXPECT_EQ(t.results.size(), 4u);
    for (const RunResult &r : t.results) {
        EXPECT_EQ(r.apps.size(), 2u);
        EXPECT_GT(r.apps[0].ipc, 0.0);
    }
}

TEST_F(ExhaustiveSweepTest, SecondSweepServedFromCache)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    DiskCache cache(cache_path_);
    Exhaustive ex(runner, cache);
    const Workload wl = makePair("BLK", "TRD");

    const ComboTable first = ex.sweep(wl, {1, 4});
    const std::size_t cached = cache.size();
    EXPECT_EQ(cached, 4u);

    const ComboTable second = ex.sweep(wl, {1, 4});
    EXPECT_EQ(cache.size(), cached) << "no new entries";
    for (std::size_t i = 0; i < first.results.size(); ++i) {
        EXPECT_DOUBLE_EQ(first.results[i].apps[0].ipc,
                         second.results[i].apps[0].ipc);
    }
}

TEST_F(ExhaustiveSweepTest, CacheSharedAcrossInstances)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");
    {
        DiskCache cache(cache_path_);
        Exhaustive ex(runner, cache);
        ex.sweep(wl, {1, 4});
    }
    DiskCache cache(cache_path_);
    EXPECT_EQ(cache.size(), 4u);
}

} // namespace
} // namespace ebm
