#include "harness/table.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"Workload", "WS"});
    t.addRow({"BFS_FFT", "1.23"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Workload"), std::string::npos);
    EXPECT_NE(out.find("BFS_FFT"), std::string::npos);
    EXPECT_NE(out.find("1.23"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"A", "B"});
    t.addRow({"longvalue", "1"});
    t.addRow({"x", "22"});
    const std::string out = t.render();
    // All lines have equal length (fixed-width columns).
    std::size_t expected = std::string::npos;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t end = out.find('\n', pos);
        const std::size_t len = end - pos;
        if (expected == std::string::npos)
            expected = len;
        EXPECT_EQ(len, expected);
        pos = end + 1;
    }
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 3), "1.000");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(TextTable, SeparatorAfterHeader)
{
    TextTable t({"H"});
    t.addRow({"v"});
    const std::string out = t.render();
    EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TextTableDeath, EmptyHeaderIsFatal)
{
    EXPECT_EBM_FATAL({ TextTable t({}); }, "column");
}

TEST(TextTableDeath, RowWidthMismatchIsFatal)
{
    TextTable t({"A", "B"});
    EXPECT_EBM_FATAL(t.addRow({"only one"}), "width");
}

} // namespace
} // namespace ebm
