/**
 * @file
 * Warm-state fork contract: forking every combination of a sweep from
 * one captured warmup prefix is an accelerator, never a semantic.
 * Fork-on and fork-off sweeps must produce bit-identical tables and
 * byte-identical compacted stores at any worker count; the cache must
 * dedupe the prefix (one miss, then hits), extend deeper targets from
 * the nearest shallower capture, single-flight concurrent requests,
 * and bound its footprint with LRU byte eviction.
 */
#include "harness/warm_state.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"
#include "harness/gpu_pool.hpp"
#include "sim/golden_digest.hpp"
#include "workload/workload_suite.hpp"

namespace ebm {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Every test starts from an empty cache and leaves the process-wide
 * switches the way it found them; leaked warm checkpoints (or a
 * disabled cache) must not bleed into sibling tests.
 */
class WarmStateTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        WarmStateCache::instance().clear();
        WarmStateCache::setEnabled(true);
        GpuPool::threadLocal().clear();
        start_ = WarmStateCache::instance().stats();
    }

    void
    TearDown() override
    {
        WarmStateCache::setEnabled(true);
        WarmStateCache::instance().clear();
        GpuPool::threadLocal().clear();
    }

    /** Counter movement since SetUp. */
    WarmStateCache::Stats
    delta() const
    {
        const auto now = WarmStateCache::instance().stats();
        WarmStateCache::Stats d;
        d.hits = now.hits - start_.hits;
        d.misses = now.misses - start_.misses;
        d.resumes = now.resumes - start_.resumes;
        d.evictions = now.evictions - start_.evictions;
        d.retainedBytes = now.retainedBytes;
        return d;
    }

    WarmStateCache::Stats start_;
};

/**
 * The acceptance test for the fork path: a full 64-combination sweep
 * with forking on must reproduce the fork-off sweep bit for bit —
 * table rows and compacted store bytes — at jobs=1 and jobs=4.
 */
TEST_F(WarmStateTest, ForkOnVsOffStoreBytesIdentical)
{
    const std::vector<std::uint32_t> ladder = {1, 2, 3, 4, 5, 6, 7, 8};
    const Workload wl = makePair("BLK", "TRD");
    const std::string stem = ::testing::TempDir() + "ebm_warm_bytes_";

    auto sweepBytes = [&](bool fork_on, std::uint32_t jobs,
                          const std::string &path) {
        std::remove(path.c_str());
        WarmStateCache::instance().clear();
        WarmStateCache::setEnabled(fork_on);
        Runner runner(test::tinyConfig(2), test::tinyOptions());
        DiskCache cache(path);
        Exhaustive ex(runner, cache);
        ex.setJobs(jobs);
        const ComboTable t = ex.sweep(wl, ladder);
        EXPECT_EQ(t.combos.size(), 64u);
        EXPECT_TRUE(cache.compact());
        std::string bytes = slurp(path);
        std::remove(path.c_str());
        return bytes;
    };

    const std::string off = sweepBytes(false, 1, stem + "off.txt");
    ASSERT_FALSE(off.empty());
    EXPECT_EQ(sweepBytes(true, 1, stem + "on1.txt"), off)
        << "forked sweep must be byte-identical to the cold one";
    EXPECT_EQ(sweepBytes(true, 4, stem + "on4.txt"), off)
        << "forking must stay byte-identical under parallel workers";
}

/** One shape's prefix is simulated once; every later combo forks. */
TEST_F(WarmStateTest, SweepWarmsPrefixOnceThenForks)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");
    const std::string path =
        ::testing::TempDir() + "ebm_warm_once.txt";
    std::remove(path.c_str());
    {
        DiskCache cache(path);
        Exhaustive ex(runner, cache);
        ex.setJobs(1);
        ex.sweep(wl, {1, 2, 4, 8});
    }
    std::remove(path.c_str());

    const auto d = delta();
    EXPECT_EQ(d.misses, 1u)
        << "16 combos of one shape share one warm prefix";
    EXPECT_EQ(d.hits, 15u);
}

/** A deeper target resumes from the nearest shallower capture. */
TEST_F(WarmStateTest, DeeperTargetResumesFromShallowerCheckpoint)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{test::streamingApp(),
                                       test::cacheApp()};
    const std::uint64_t key = 0xfeedu;
    WarmStateCache &cache = WarmStateCache::instance();

    Gpu g1(cfg, apps);
    const auto shallow = cache.warmTo(key, g1, 1000, 500, 100);
    ASSERT_NE(shallow, nullptr);
    EXPECT_EQ(shallow->elapsed, 1000u);

    Gpu g2(cfg, apps);
    const auto deep = cache.warmTo(key, g2, 2000, 500, 100);
    ASSERT_NE(deep, nullptr);
    EXPECT_EQ(deep->elapsed, 2000u);
    EXPECT_EQ(delta().resumes, 1u)
        << "the 2000-cycle warm must seed from the 1000-cycle capture";

    // The resumed capture must be bit-identical to a cold one.
    cache.clear();
    Gpu g3(cfg, apps);
    const auto cold = cache.warmTo(key, g3, 2000, 500, 100);
    ASSERT_NE(cold, nullptr);
    Gpu a(cfg, apps), b(cfg, apps);
    a.restore(deep->gpu);
    b.restore(cold->gpu);
    EXPECT_EQ(goldenDigest(a), goldenDigest(b));
    a.run(3000);
    b.run(3000);
    EXPECT_EQ(goldenDigest(a), goldenDigest(b));
}

/** Concurrent requests for one checkpoint compute it exactly once. */
TEST_F(WarmStateTest, SingleFlightComputesOnce)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{test::streamingApp(),
                                       test::cacheApp()};
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
            Gpu gpu(cfg, apps);
            const auto cp = WarmStateCache::instance().warmTo(
                0xabcdu, gpu, 3000, 500, 100);
            EXPECT_NE(cp, nullptr);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const auto d = delta();
    EXPECT_EQ(d.misses, 1u) << "one thread computes, the rest wait";
    EXPECT_EQ(d.hits, kThreads - 1u);
}

/** The LRU byte budget evicts oldest-first; the newest survives. */
TEST_F(WarmStateTest, ByteBudgetEvictsOldestFirst)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{test::streamingApp(),
                                       test::cacheApp()};
    WarmStateCache &cache = WarmStateCache::instance();
    cache.setBudgetBytes(1); // Every insert overflows the budget.

    Gpu g1(cfg, apps);
    ASSERT_NE(cache.warmTo(0x1u, g1, 1000, 500, 100), nullptr);
    Gpu g2(cfg, apps);
    ASSERT_NE(cache.warmTo(0x2u, g2, 1000, 500, 100), nullptr);
    EXPECT_EQ(delta().evictions, 1u)
        << "the second insert displaces the first";

    // The first key was evicted: asking again recomputes (miss).
    Gpu g3(cfg, apps);
    ASSERT_NE(cache.warmTo(0x1u, g3, 1000, 500, 100), nullptr);
    EXPECT_EQ(delta().misses, 3u);
    EXPECT_EQ(delta().hits, 0u);

    cache.setBudgetBytes(256u * 1024 * 1024);
}

/** EBM_SNAPSHOT=0 / setEnabled(false) turns the cache fully off. */
TEST_F(WarmStateTest, KillSwitchDisablesCaptureEntirely)
{
    WarmStateCache::setEnabled(false);
    EXPECT_FALSE(WarmStateCache::enabled());
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{test::streamingApp(),
                                       test::cacheApp()};
    Gpu gpu(cfg, apps);
    EXPECT_EQ(WarmStateCache::instance().warmTo(0x9u, gpu, 1000, 500,
                                                100),
              nullptr);
    const auto d = delta();
    EXPECT_EQ(d.hits, 0u);
    EXPECT_EQ(d.misses, 0u);
    WarmStateCache::setEnabled(true);
}

/**
 * The kill switch parses through the shared strict envUint parser:
 * exact "0" disables, exact "1" enables, trailing garbage falls back
 * to enabled rather than being half-read.
 */
TEST_F(WarmStateTest, KillSwitchUsesStrictEnvParse)
{
    const auto parse = [](const char *value) {
        ::setenv("EBM_SNAPSHOT_PARSE_PROBE", value, 1);
        const std::uint64_t v =
            envUint("EBM_SNAPSHOT_PARSE_PROBE", 1, 0, 1);
        ::unsetenv("EBM_SNAPSHOT_PARSE_PROBE");
        return v;
    };
    EXPECT_EQ(parse("0"), 0u);
    EXPECT_EQ(parse("1"), 1u);
    EXPECT_EQ(parse("0x"), 1u) << "trailing garbage -> fallback";
    EXPECT_EQ(parse(" 0"), 1u) << "leading space -> fallback";
    EXPECT_EQ(parse("off"), 1u) << "words are not numbers here";
}

} // namespace
} // namespace ebm
