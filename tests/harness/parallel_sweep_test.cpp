/**
 * @file
 * Determinism contract of the parallel sweep path: a sweep dispatched
 * onto 4 workers must be bit-identical — table, compacted cache
 * bytes, retry/skip accounting — to the strictly serial one. (The
 * raw appended file reflects completion order; compact() is the
 * canonical byte representation.) Plus a raw concurrency hammer on
 * DiskCache and the non-finite cache-entry recompute guard.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/fault_injector.hpp"
#include "common/job_pool.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"

namespace ebm {
namespace {

using Point = FaultInjector::Point;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Bitwise comparison: equal doubles with equal representations. */
void
expectBitIdentical(const RunResult &a, const RunResult &b,
                   std::size_t row)
{
    ASSERT_EQ(a.apps.size(), b.apps.size()) << "row " << row;
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a.apps[i].ipc, &b.apps[i].ipc,
                              sizeof(double)), 0)
            << "row " << row << " app " << i << " ipc";
        EXPECT_EQ(std::memcmp(&a.apps[i].bw, &b.apps[i].bw,
                              sizeof(double)), 0)
            << "row " << row << " app " << i << " bw";
        EXPECT_EQ(std::memcmp(&a.apps[i].l1Mr, &b.apps[i].l1Mr,
                              sizeof(double)), 0)
            << "row " << row << " app " << i << " l1Mr";
        EXPECT_EQ(std::memcmp(&a.apps[i].l2Mr, &b.apps[i].l2Mr,
                              sizeof(double)), 0)
            << "row " << row << " app " << i << " l2Mr";
    }
    EXPECT_EQ(std::memcmp(&a.totalBw, &b.totalBw, sizeof(double)), 0)
        << "row " << row << " totalBw";
    EXPECT_EQ(a.measuredCycles, b.measuredCycles) << "row " << row;
    EXPECT_EQ(a.finalTlp, b.finalTlp) << "row " << row;
}

class ParallelSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const std::string stem =
            ::testing::TempDir() + "ebm_par_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name();
        serial_path_ = stem + "_j1.txt";
        parallel_path_ = stem + "_j4.txt";
        removeAll();
    }

    void TearDown() override { removeAll(); }

    void
    removeAll()
    {
        for (const std::string &p : {serial_path_, parallel_path_}) {
            std::remove(p.c_str());
            std::remove((p + ".quarantined").c_str());
            std::remove((p + ".tmp").c_str());
        }
    }

    std::string serial_path_;
    std::string parallel_path_;
};

/**
 * The acceptance test for the parallel sweep: one full 2-app sweep
 * over the paper-shaped 8x8 = 64-combination ladder at jobs=4 must
 * reproduce the jobs=1 table bit for bit — and, because compaction
 * rewrites sorted by key, the two compacted cache files must be
 * byte-identical too.
 */
TEST_F(ParallelSweepTest, JobsFourIsBitIdenticalToJobsOne)
{
    const std::vector<std::uint32_t> ladder = {1, 2, 3, 4, 5, 6, 7, 8};
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");

    ComboTable serial;
    {
        DiskCache cache(serial_path_);
        Exhaustive ex(runner, cache);
        ex.setJobs(1);
        serial = ex.sweep(wl, ladder);
        EXPECT_EQ(ex.status().simulated, 64u);
        EXPECT_TRUE(cache.compact());
    }

    ComboTable parallel;
    {
        DiskCache cache(parallel_path_);
        Exhaustive ex(runner, cache);
        ex.setJobs(4);
        parallel = ex.sweep(wl, ladder);
        EXPECT_EQ(ex.status().simulated, 64u);
        EXPECT_EQ(ex.status().fromCache, 0u);
        EXPECT_TRUE(cache.compact());
    }

    ASSERT_EQ(serial.combos.size(), 64u);
    ASSERT_EQ(parallel.combos.size(), 64u);
    EXPECT_EQ(serial.levels, parallel.levels);
    EXPECT_EQ(serial.skipped, parallel.skipped);
    for (std::size_t row = 0; row < serial.combos.size(); ++row) {
        EXPECT_EQ(serial.combos[row], parallel.combos[row])
            << "row order must be the odometer order at any job count";
        expectBitIdentical(serial.results[row], parallel.results[row],
                           row);
    }

    const std::string serial_bytes = slurp(serial_path_);
    const std::string parallel_bytes = slurp(parallel_path_);
    ASSERT_FALSE(serial_bytes.empty());
    EXPECT_EQ(serial_bytes, parallel_bytes)
        << "sorted-key compaction must make the cache file "
           "independent of worker interleaving";

    // Nothing was quarantined or left behind by either run.
    for (const std::string &p : {serial_path_, parallel_path_}) {
        std::ifstream q(p + ".quarantined");
        EXPECT_FALSE(q.good()) << p;
        std::ifstream t(p + ".tmp");
        EXPECT_FALSE(t.good()) << p;
    }
}

/** A parallel sweep resumes from a serial sweep's cache (and back). */
TEST_F(ParallelSweepTest, ParallelSweepResumesFromSerialCache)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");

    DiskCache cache(serial_path_);
    Exhaustive ex(runner, cache);
    ex.setJobs(1);
    ex.sweep(wl, {1, 4});

    Exhaustive resumed(runner, cache);
    resumed.setJobs(4);
    resumed.sweep(wl, {1, 4});
    EXPECT_EQ(resumed.status().fromCache, 4u);
    EXPECT_EQ(resumed.status().simulated, 0u);
}

/**
 * Injected run failures under workers: the pre-drawn fault schedule
 * reproduces the serial injector query sequence, so the persistent-
 * failure scenario (third combination dies on every attempt) yields
 * identical retry/skip accounting — and the same skipped row — at
 * jobs=4 as at jobs=1.
 */
TEST_F(ParallelSweepTest, FaultAccountingMatchesSerialUnderWorkers)
{
    auto runWithJobs = [&](std::uint32_t jobs_count,
                           const std::string &path, SweepStatus &status) {
        RunOptions opts = test::tinyOptions();
        FaultInjector fi(5);
        fi.armAfter(Point::RunFail, 2, 3);
        opts.faultInjector = &fi;

        Runner runner(test::tinyConfig(2), opts);
        DiskCache cache(path);
        Exhaustive ex(runner, cache);
        ex.setJobs(jobs_count);
        const ComboTable t = ex.sweep(makePair("BLK", "TRD"), {1, 4});
        status = ex.status();
        EXPECT_TRUE(cache.compact());
        return t;
    };

    SweepStatus serial_status;
    SweepStatus parallel_status;
    const ComboTable serial =
        runWithJobs(1, serial_path_, serial_status);
    const ComboTable parallel =
        runWithJobs(4, parallel_path_, parallel_status);

    EXPECT_EQ(serial_status.retried, 2u);
    EXPECT_EQ(serial_status.skipped, 1u);
    EXPECT_EQ(parallel_status.retried, serial_status.retried);
    EXPECT_EQ(parallel_status.skipped, serial_status.skipped);
    EXPECT_EQ(parallel_status.simulated, serial_status.simulated);

    ASSERT_EQ(serial.skipped.size(), parallel.skipped.size());
    EXPECT_EQ(serial.skipped, parallel.skipped)
        << "the same row must be the skipped one";
    for (std::size_t row = 0; row < serial.combos.size(); ++row)
        expectBitIdentical(serial.results[row], parallel.results[row],
                           row);
    EXPECT_EQ(slurp(serial_path_), slurp(parallel_path_));
}

/**
 * Probability-armed failures are also deterministic across job counts:
 * the pre-draw consumes the injector's RNG serially in row order, so
 * the random schedule itself is identical.
 */
TEST_F(ParallelSweepTest, ProbabilityFaultsDeterministicAcrossJobs)
{
    auto runWithJobs = [&](std::uint32_t jobs_count,
                           const std::string &path, SweepStatus &status) {
        RunOptions opts = test::tinyOptions();
        FaultInjector fi(99);
        fi.armProbability(Point::RunFail, 0.4);
        opts.faultInjector = &fi;

        Runner runner(test::tinyConfig(2), opts);
        DiskCache cache(path);
        Exhaustive ex(runner, cache);
        ex.setJobs(jobs_count);
        const ComboTable t = ex.sweep(makePair("BLK", "TRD"), {1, 4});
        status = ex.status();
        EXPECT_TRUE(cache.compact());
        return t;
    };

    SweepStatus serial_status;
    SweepStatus parallel_status;
    const ComboTable serial =
        runWithJobs(1, serial_path_, serial_status);
    const ComboTable parallel =
        runWithJobs(4, parallel_path_, parallel_status);

    EXPECT_EQ(parallel_status.retried, serial_status.retried);
    EXPECT_EQ(parallel_status.skipped, serial_status.skipped);
    EXPECT_EQ(serial.skipped, parallel.skipped);
    EXPECT_EQ(slurp(serial_path_), slurp(parallel_path_));
}

/**
 * A well-shaped, checksummed cache entry holding NaN (written by a
 * pre-guard version) is treated as a miss: the sweep recomputes the
 * combination and overwrites the poisoned entry.
 */
TEST_F(ParallelSweepTest, NonFiniteCachedComboIsRecomputed)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");

    ComboTable original;
    {
        DiskCache cache(serial_path_);
        Exhaustive ex(runner, cache);
        original = ex.sweep(wl, {1, 4});
    }

    DiskCache cache(serial_path_);
    const std::string key =
        "combo/" + runner.fingerprint() + "/" + wl.name + "/1/1";
    ASSERT_TRUE(cache.get(key).has_value()) << "key construction";
    std::vector<double> poison(4 * 2 + 1, 1.0);
    poison[0] = std::numeric_limits<double>::quiet_NaN();
    cache.put(key, poison);

    EXPECT_FALSE(cache.getValidated(key, poison.size()).has_value())
        << "non-finite entries must read as misses";

    Exhaustive ex(runner, cache);
    ex.setJobs(4);
    const ComboTable recovered = ex.sweep(wl, {1, 4});
    EXPECT_EQ(ex.status().fromCache, 3u);
    EXPECT_EQ(ex.status().simulated, 1u);
    for (std::size_t row = 0; row < original.combos.size(); ++row)
        expectBitIdentical(original.results[row],
                           recovered.results[row], row);

    // The recompute overwrote the poisoned entry in place.
    EXPECT_TRUE(cache.getValidated(key, poison.size()).has_value());
}

/**
 * Raw concurrency hammer: many workers inserting and reading distinct
 * keys. Every entry must survive in memory and on disk, with no
 * persist failures and a clean reload.
 */
TEST_F(ParallelSweepTest, DiskCacheConcurrentPutGetHammer)
{
    constexpr std::size_t kEntries = 200;
    auto keyOf = [](std::size_t i) {
        return "hammer/key" + std::to_string(i);
    };

    {
        DiskCache cache(serial_path_);
        JobPool pool(8);
        for (std::size_t i = 0; i < kEntries; ++i) {
            pool.submit([&cache, &keyOf, i] {
                const std::vector<double> values = {
                    static_cast<double>(i),
                    static_cast<double>(i) * 0.5, 42.0};
                cache.put(keyOf(i), values);
                // Read-back of our own key plus a racing lookup of a
                // neighbour that may or may not be there yet.
                const auto mine = cache.getValidated(keyOf(i), 3);
                ASSERT_TRUE(mine.has_value());
                EXPECT_EQ((*mine)[0], static_cast<double>(i));
                cache.get(keyOf(i / 2));
            });
        }
        pool.wait();
        EXPECT_EQ(cache.size(), kEntries);
        EXPECT_EQ(cache.persistFailures(), 0u);
    }

    // Reload from disk: the coalescing single-writer persist must have
    // covered every inserted entry before the pool drained.
    DiskCache reloaded(serial_path_);
    EXPECT_EQ(reloaded.loadReport().entriesLoaded, kEntries);
    EXPECT_EQ(reloaded.loadReport().entriesSkipped, 0u);
    EXPECT_FALSE(reloaded.loadReport().quarantined);
    for (std::size_t i = 0; i < kEntries; ++i) {
        const auto v = reloaded.getValidated(keyOf(i), 3);
        ASSERT_TRUE(v.has_value()) << keyOf(i);
        EXPECT_EQ((*v)[1], static_cast<double>(i) * 0.5);
    }
}

/**
 * Sharding is an in-memory concurrency knob only: the same hammer —
 * 8 threads over 160 keys, each thread probing cold (miss), inserting,
 * and reading back (hit) — must leave a byte-identical compacted file
 * and identical hit/miss accounting at every shard count, including
 * the degenerate single-shard configuration.
 */
TEST_F(ParallelSweepTest, ShardCountNeverChangesBytesOrAccounting)
{
    constexpr std::size_t kKeys = 160;
    constexpr unsigned kThreads = 8;
    auto keyOf = [](std::size_t i) {
        return "shard/key" + std::to_string(i);
    };

    struct Outcome
    {
        std::string bytes;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t size = 0;
    };

    auto hammer = [&](std::uint32_t shards) {
        const std::string path =
            serial_path_ + "." + std::to_string(shards);
        std::remove(path.c_str());
        Outcome out;
        {
            DiskCache cache(path, nullptr, shards);
            EXPECT_EQ(cache.shardCount(), shards);
            JobPool pool(kThreads);
            for (std::size_t i = 0; i < kKeys; ++i) {
                // Each worker touches only its own key, so the
                // hit/miss tally is exact at any interleaving: one
                // cold miss, one post-insert hit per key.
                pool.submit([&cache, &keyOf, i] {
                    EXPECT_FALSE(cache.get(keyOf(i)).has_value());
                    cache.put(keyOf(i),
                              {static_cast<double>(i),
                               static_cast<double>(i) * 0.25, 7.0});
                    const auto v = cache.getValidated(keyOf(i), 3);
                    ASSERT_TRUE(v.has_value());
                    EXPECT_EQ((*v)[0], static_cast<double>(i));
                });
            }
            pool.wait();
            // Validation rejects count as misses, in every shard.
            EXPECT_FALSE(
                cache.getValidated(keyOf(0), 99).has_value());
            out.hits = cache.hits();
            out.misses = cache.misses();
            out.size = cache.size();
            EXPECT_EQ(cache.persistFailures(), 0u);
            EXPECT_TRUE(cache.compact());
        }
        out.bytes = slurp(path);
        std::remove(path.c_str());
        return out;
    };

    const Outcome single = hammer(1);
    EXPECT_EQ(single.size, kKeys);
    EXPECT_EQ(single.hits, kKeys);
    EXPECT_EQ(single.misses, kKeys + 1);
    ASSERT_FALSE(single.bytes.empty());

    for (const std::uint32_t shards : {4u, 16u, 64u}) {
        const Outcome sharded = hammer(shards);
        EXPECT_EQ(sharded.bytes, single.bytes)
            << shards << " shards must persist the single-shard bytes";
        EXPECT_EQ(sharded.hits, single.hits) << shards;
        EXPECT_EQ(sharded.misses, single.misses) << shards;
        EXPECT_EQ(sharded.size, single.size) << shards;
    }
}

/** A sharded cache reloads a file persisted by a single-shard one
 * (and vice versa): shard count is invisible on disk. */
TEST_F(ParallelSweepTest, ShardCountIsInvisibleAcrossReloads)
{
    {
        DiskCache cache(serial_path_, nullptr, 1);
        cache.put("a/b", {1.0, 2.0});
        cache.put("c/d", {3.0});
    }
    DiskCache wide(serial_path_, nullptr, 32);
    EXPECT_EQ(wide.loadReport().entriesLoaded, 2u);
    const auto v = wide.getValidated("a/b", 2);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ((*v)[1], 2.0);

    DiskCache narrow(serial_path_, nullptr, 1);
    EXPECT_EQ(narrow.loadReport().entriesLoaded, 2u);
    EXPECT_TRUE(narrow.get("c/d").has_value());
}

} // namespace
} // namespace ebm
