/**
 * @file
 * The chaos acceptance suite: supervised sharded sweeps with workers
 * SIGKILLed at seeded crash points — claim held (nothing durable),
 * post-put pre-release (result durable, claim orphaned), and mid-way
 * through a store append (torn bytes on disk) — across {2, 4}
 * processes x jobs {1, 8}. The supervisor restarts every victim, the
 * staleness protocol re-homes their rows, torn tails are truncated by
 * the next writer, and the compacted shared store is byte-identical
 * to a crash-free single-process run. fsck agrees the survivor is
 * clean before compaction touches it.
 */
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/fault_injector.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"
#include "harness/store_fsck.hpp"
#include "harness/sweep_supervisor.hpp"

namespace ebm {
namespace {

using Point = FaultInjector::Point;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr) {
            had_ = true;
            old_ = old;
        }
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

void
removeDirTree(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d != nullptr) {
        while (struct dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

bool
tablesBitIdentical(const ComboTable &a, const ComboTable &b)
{
    if (a.combos != b.combos || a.levels != b.levels ||
        a.skipped != b.skipped)
        return false;
    for (std::size_t row = 0; row < a.results.size(); ++row) {
        const RunResult &x = a.results[row];
        const RunResult &y = b.results[row];
        if (x.apps.size() != y.apps.size() ||
            x.measuredCycles != y.measuredCycles ||
            x.finalTlp != y.finalTlp)
            return false;
        if (std::memcmp(&x.totalBw, &y.totalBw, sizeof(double)) != 0)
            return false;
        for (std::size_t i = 0; i < x.apps.size(); ++i) {
            if (std::memcmp(&x.apps[i].ipc, &y.apps[i].ipc,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].bw, &y.apps[i].bw,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].l1Mr, &y.apps[i].l1Mr,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].l2Mr, &y.apps[i].l2Mr,
                            sizeof(double)) != 0)
                return false;
        }
    }
    return true;
}

/** The crash point a slot's first life dies at (rotated so every
 * grid cell with >= 3 workers exercises all three). */
Point
crashPointFor(std::uint32_t slot)
{
    switch (slot % 3) {
    case 0:
        return Point::CrashClaimHeld;
    case 1:
        return Point::CrashPostPut;
    default:
        return Point::IoAbortMidWrite;
    }
}

class ChaosSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = ::testing::TempDir() + "ebm_chaos_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        ref_path_ = stem_ + "_ref.cache";
        shared_path_ = stem_ + "_shared.cache";
        hb_dir_ = stem_ + ".hb";
        removeAll();
    }

    void TearDown() override { removeAll(); }

    void
    removeAll()
    {
        for (const std::string &p : {ref_path_, shared_path_}) {
            std::remove(p.c_str());
            std::remove((p + ".quarantined").c_str());
            std::remove((p + ".tmp").c_str());
            std::remove((p + ".fsck-quarantine").c_str());
            removeDirTree(p + ".claims");
        }
        removeDirTree(hb_dir_);
    }

    std::string stem_;
    std::string ref_path_;
    std::string shared_path_;
    std::string hb_dir_;
};

/**
 * One grid cell: @p procs supervised workers (jobs threads each) fill
 * the shared sweep; every slot's first life dies at its seeded crash
 * point; the supervisor restarts it and the survivors converge on the
 * crash-free bytes.
 */
void
runChaosCell(int procs, std::uint32_t jobs,
             const std::string &shared_path, const std::string &hb_dir,
             const ComboTable &ref, const std::string &ref_bytes,
             const std::vector<std::uint32_t> &ladder)
{
    SCOPED_TRACE(std::to_string(procs) + "p/" + std::to_string(jobs) +
                 "j");

    SweepSupervisor::Options o;
    o.workers = static_cast<std::uint32_t>(procs);
    o.maxRestarts = 5;
    o.backoffBase = std::chrono::milliseconds(10);
    o.backoffCap = std::chrono::milliseconds(100);
    o.heartbeatDir = hb_dir;
    // Generous: hang detection is exercised by the supervisor suite;
    // here it must never misfire while workers wait on peers' rows.
    o.hangTimeout = std::chrono::seconds(30);
    SweepSupervisor sup(o);

    const SweepSupervisor::Report report = sup.run(
        [&](std::uint32_t slot, std::uint32_t attempt) {
            RunOptions opts = test::tinyOptions();
            std::optional<FaultInjector> fi;
            FaultInjector *fip = nullptr;
            if (attempt == 0) {
                // First life: every crash-point draw fires, so this
                // worker dies at its designated point on the first
                // row it actually computes. Replacement lives run
                // clean and finish the sweep cooperatively.
                fi.emplace(1000u + slot);
                fi->armAfter(crashPointFor(slot), 0, 64);
                fip = &*fi;
                opts.faultInjector = fip;
            }
            Runner runner(test::tinyConfig(2), opts);
            DiskCache cache(shared_path, fip);
            Exhaustive ex(runner, cache);
            ex.setJobs(jobs);
            const ComboTable mine =
                ex.sweep(makePair("BLK", "TRD"), ladder);
            return tablesBitIdentical(ref, mine) ? 0 : 2;
        });

    EXPECT_TRUE(report.allSucceeded) << report.summaryLine();
    EXPECT_GE(report.totalRestarts, 1u)
        << "at least one seeded crash must have fired: "
        << report.summaryLine();

    // The surviving store is structurally sound before compaction
    // (all torn tails were truncated by later writers)...
    const FsckReport fsck = fsckStore(shared_path);
    EXPECT_EQ(fsck.verdict, FsckReport::Verdict::Clean)
        << fsck.summaryLine();

    // ...and compacts to the crash-free single-process bytes.
    DiskCache merged(shared_path);
    EXPECT_FALSE(merged.loadReport().quarantined);
    EXPECT_EQ(merged.size(), ref.combos.size());
    ASSERT_TRUE(merged.compact());
    EXPECT_EQ(slurp(shared_path), ref_bytes)
        << "chaos must not change the canonical store bytes";
}

TEST_F(ChaosSweepTest, KilledWorkersConvergeToCrashFreeBytes)
{
    const std::vector<std::uint32_t> ladder = {1, 2, 4};

    // Crash-free single-process reference, compacted.
    ComboTable ref;
    std::string ref_bytes;
    {
        Runner runner(test::tinyConfig(2), test::tinyOptions());
        DiskCache cache(ref_path_);
        Exhaustive ex(runner, cache);
        ex.setJobs(1);
        ref = ex.sweep(makePair("BLK", "TRD"), ladder);
        ASSERT_EQ(ex.status().simulated, 9u);
        ASSERT_TRUE(cache.compact());
        ref_bytes = slurp(ref_path_);
        ASSERT_FALSE(ref_bytes.empty());
    }

    ScopedEnv shard("EBM_SWEEP_SHARD", "1");
    ScopedEnv stale("EBM_CLAIM_STALE_MS", "300");

    const struct
    {
        int procs;
        std::uint32_t jobs;
    } grid[] = {{2, 1}, {2, 8}, {4, 1}, {4, 8}};
    for (const auto &cfg : grid) {
        std::remove(shared_path_.c_str());
        removeDirTree(shared_path_ + ".claims");
        removeDirTree(hb_dir_);
        runChaosCell(cfg.procs, cfg.jobs, shared_path_, hb_dir_, ref,
                     ref_bytes, ladder);
    }
}

/**
 * The fsck CLI contract on a chaos-shaped corpse: a store with a torn
 * tail (a mid-append SIGKILL with no subsequent writer) scrubs Dirty
 * and repairs to exactly the durable entries.
 */
TEST_F(ChaosSweepTest, MidAppendKillLeavesARepairableStore)
{
    // One worker, killed mid-append of its second row, never
    // restarted: the store ends in a torn frame.
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        FaultInjector fi(7);
        // Shim write ordinals on a fresh store: 0 = header, 1 = first
        // batch, 2 = second batch — kill mid-way through the second.
        fi.armAfter(Point::IoAbortMidWrite, 2, 1);
        DiskCache cache(shared_path_, &fi);
        cache.put("row/1", {1.0, 2.0});
        cache.sync();
        cache.put("row/2", {3.0, 4.0});
        cache.sync();
        ::_exit(0); // Unreachable.
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

    const FsckReport scrub = fsckStore(shared_path_);
    EXPECT_EQ(scrub.verdict, FsckReport::Verdict::Dirty);
    EXPECT_TRUE(scrub.tornTail);
    EXPECT_EQ(scrub.framesOk, 1u);

    FsckOptions options;
    options.repair = true;
    const FsckReport repair = fsckStore(shared_path_, options);
    EXPECT_TRUE(repair.repaired);

    DiskCache recovered(shared_path_);
    EXPECT_EQ(recovered.size(), 1u);
    const std::optional<std::vector<double>> row =
        recovered.get("row/1");
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ((*row)[0], 1.0);
    EXPECT_FALSE(recovered.get("row/2").has_value())
        << "the torn row must be gone, not half-present";
}

} // namespace
} // namespace ebm
