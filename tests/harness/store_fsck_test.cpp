/**
 * @file
 * The offline store scrubber: clean stores are untouched, the
 * deterministic corrupted fixture scrubs to exact counts, repair
 * salvages valid frames on *both* sides of a corrupt region (the
 * resync DiskCache's online policy deliberately skips), and — the
 * core invariant — a repaired store is byte-identical to
 * DiskCache::compact() of the same surviving entry set.
 */
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/disk_cache.hpp"
#include "harness/shard_claim.hpp"
#include "harness/store_fsck.hpp"
#include "harness/store_format.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

class StoreFsckTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "ebm_fsck_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".cache";
        removeAll();
    }

    void TearDown() override { removeAll(); }

    void
    removeAll()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".fsck-quarantine").c_str());
        std::remove((path_ + ".fsck-tmp").c_str());
        std::remove((path_ + ".quarantined").c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    std::string path_;
};

TEST_F(StoreFsckTest, MissingFileIsUnrecoverable)
{
    const FsckReport report = fsckStore(path_);
    EXPECT_EQ(report.verdict, FsckReport::Verdict::Unrecoverable);
    EXPECT_FALSE(report.error.empty());
}

TEST_F(StoreFsckTest, GarbageFileIsUnrecoverable)
{
    spit(path_, "this is not a v3 store at all, not even close....");
    const FsckReport report = fsckStore(path_);
    EXPECT_EQ(report.verdict, FsckReport::Verdict::Unrecoverable);
    EXPECT_FALSE(report.headerOk);
}

TEST_F(StoreFsckTest, CleanStoreIsCleanAndUntouched)
{
    {
        DiskCache cache(path_);
        cache.put("alpha", {1.0, 2.0});
        cache.put("beta", {3.0});
        cache.sync();
    }
    const std::string before = slurp(path_);
    FsckOptions options;
    options.repair = true;
    const FsckReport report = fsckStore(path_, options);
    EXPECT_EQ(report.verdict, FsckReport::Verdict::Clean);
    EXPECT_TRUE(report.headerOk);
    EXPECT_EQ(report.framesOk, 2u);
    EXPECT_EQ(report.uniqueKeys, 2u);
    EXPECT_EQ(report.badRegions, 0u);
    EXPECT_FALSE(report.repaired);
    EXPECT_EQ(slurp(path_), before)
        << "a clean store must never be rewritten";
}

TEST_F(StoreFsckTest, FixtureScrubsToExactCounts)
{
    ASSERT_TRUE(writeFsckFixture(path_));
    const FsckReport report = fsckStore(path_);
    EXPECT_EQ(report.verdict, FsckReport::Verdict::Dirty);
    EXPECT_TRUE(report.headerOk);
    EXPECT_EQ(report.framesOk, 8u)
        << "valid frames on both sides of the corruption survive";
    EXPECT_EQ(report.uniqueKeys, 8u);
    EXPECT_EQ(report.badRegions, 1u);
    EXPECT_TRUE(report.tornTail);
    EXPECT_GT(report.bytesQuarantined, 0u);
    EXPECT_FALSE(report.repaired) << "scrub-only must not write";
    EXPECT_EQ(slurp(path_ + ".fsck-quarantine"), "")
        << "scrub-only must not quarantine either";
}

TEST_F(StoreFsckTest, RepairSalvagesAndQuarantines)
{
    ASSERT_TRUE(writeFsckFixture(path_));
    const std::uint64_t dirty_size = slurp(path_).size();

    FsckOptions options;
    options.repair = true;
    const FsckReport report = fsckStore(path_, options);
    EXPECT_EQ(report.verdict, FsckReport::Verdict::Dirty);
    EXPECT_TRUE(report.repaired);
    EXPECT_EQ(report.quarantinePath, path_ + ".fsck-quarantine");
    EXPECT_EQ(slurp(report.quarantinePath).size(),
              report.bytesQuarantined);
    EXPECT_LT(slurp(path_).size(), dirty_size);

    // The repaired store loads cleanly with every salvaged entry.
    DiskCache cache(path_);
    EXPECT_EQ(cache.size(), 8u);
    EXPECT_FALSE(cache.loadReport().quarantined);
    EXPECT_FALSE(cache.loadReport().tornTailTruncated);

    // And a second scrub finds nothing.
    const FsckReport again = fsckStore(path_);
    EXPECT_EQ(again.verdict, FsckReport::Verdict::Clean);
}

TEST_F(StoreFsckTest, RepairedBytesMatchDiskCacheCompact)
{
    // Build a store through DiskCache, corrupt one mid-file frame,
    // repair with fsck, and compare against DiskCache::compact() of
    // the surviving entries: the two code paths must emit identical
    // canonical bytes.
    const std::vector<std::string> keys = {"a/1", "b/2", "c/3", "d/4",
                                           "e/5"};
    {
        DiskCache cache(path_);
        for (std::size_t i = 0; i < keys.size(); ++i)
            cache.put(keys[i], {static_cast<double>(i), 0.5 * i});
        cache.sync();
    }

    // Locate and garble the middle frame ("c/3" — frames are in put
    // order here: one group-commit batch preserves queue order).
    std::string bytes = slurp(path_);
    const std::size_t at = bytes.find("c/3");
    ASSERT_NE(at, std::string::npos);
    bytes[at + 4] ^= 0x7f; // A value byte: checksum now fails.
    spit(path_, bytes);

    FsckOptions options;
    options.repair = true;
    const FsckReport report = fsckStore(path_, options);
    EXPECT_TRUE(report.repaired);
    EXPECT_EQ(report.framesOk, 4u);
    EXPECT_EQ(report.badRegions, 1u);
    const std::string repaired = slurp(path_);

    // Reference: the same four entries written and compacted by
    // DiskCache itself.
    const std::string ref_path = path_ + ".ref";
    {
        DiskCache ref(ref_path);
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (keys[i] == "c/3")
                continue;
            ref.put(keys[i], {static_cast<double>(i), 0.5 * i});
        }
        ref.sync();
        ASSERT_TRUE(ref.compact());
    }
    EXPECT_EQ(repaired, slurp(ref_path))
        << "fsck repair and DiskCache::compact must be byte-identical";
    std::remove(ref_path.c_str());
    std::remove((ref_path + ".tmp").c_str());
}

TEST_F(StoreFsckTest, RepairZeroesTheFencingEpoch)
{
    {
        DiskCache cache(path_);
        cache.noteFencingEpoch(7);
        cache.put("k", {1.0});
        cache.sync();
    }
    // The appended store carries the takeover epoch...
    {
        DiskCache reopened(path_);
        EXPECT_EQ(reopened.loadReport().fencingEpoch, 7u);
    }
    const FsckReport scrub = fsckStore(path_);
    EXPECT_EQ(scrub.fencingEpoch, 7u);

    // ...and a torn tail plus repair renders it canonical again.
    std::string bytes = slurp(path_);
    spit(path_, bytes.substr(0, bytes.size() - 3));
    FsckOptions options;
    options.repair = true;
    const FsckReport report = fsckStore(path_, options);
    EXPECT_TRUE(report.repaired);
    EXPECT_EQ(storefmt::parseHeader(slurp(path_).data()).fencingEpoch,
              0u);
}

TEST_F(StoreFsckTest, RepairSweepsOrphanedEpochSidecars)
{
    const std::string claims_dir = path_ + ".claims";
    {
        DiskCache cache(path_);
        cache.put("row", {1.0});
        cache.sync();
    }
    {
        // A finished sharded row leaves its epoch counter orphaned.
        ShardClaims claims(path_);
        ASSERT_TRUE(claims.tryAcquire("row"));
        ASSERT_TRUE(claims.release("row"));
    }

    // Scrub-only never touches sidecars, even stale ones.
    ::setenv("EBM_CLAIM_STALE_MS", "1", 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const FsckReport scrub = fsckStore(path_);
    EXPECT_EQ(scrub.orphanedEpochsRemoved, 0u);

    // Repair sweeps them and reports the count in the summary.
    FsckOptions options;
    options.repair = true;
    const FsckReport report = fsckStore(path_, options);
    ::unsetenv("EBM_CLAIM_STALE_MS");
    EXPECT_EQ(report.verdict, FsckReport::Verdict::Clean);
    EXPECT_EQ(report.orphanedEpochsRemoved, 1u);
    EXPECT_NE(report.summaryLine().find("epoch sidecar"),
              std::string::npos);

    ::rmdir(claims_dir.c_str()); // Empty once the sidecar is swept.
}

} // namespace
} // namespace ebm
