/**
 * @file
 * Cross-process sweep sharding: the ShardClaims protocol in isolation,
 * the deferred-row wait phase driven single-process (skip replication,
 * stale-claim takeover), and the full acceptance scenario — N forked
 * processes cooperatively filling one cold sweep through a shared
 * store, each producing the bit-identical table, with the compacted
 * store byte-identical to a single-process run.
 *
 * The forked suites run in their own binary: fork()/waitpid()
 * orchestration should never share a process with unrelated tests.
 */
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/fault_injector.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"
#include "harness/shard_claim.hpp"

namespace ebm {
namespace {

using Point = FaultInjector::Point;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Set an environment variable for one scope (restored on exit). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr) {
            had_ = true;
            old_ = old;
        }
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

/** Remove a flat directory (claim dirs hold no subdirectories). */
void
removeDirTree(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d != nullptr) {
        while (struct dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

/** Bitwise table equality (the cross-process identity contract). */
bool
tablesBitIdentical(const ComboTable &a, const ComboTable &b)
{
    if (a.combos != b.combos || a.levels != b.levels ||
        a.skipped != b.skipped)
        return false;
    for (std::size_t row = 0; row < a.results.size(); ++row) {
        const RunResult &x = a.results[row];
        const RunResult &y = b.results[row];
        if (x.apps.size() != y.apps.size() ||
            x.measuredCycles != y.measuredCycles ||
            x.finalTlp != y.finalTlp)
            return false;
        if (std::memcmp(&x.totalBw, &y.totalBw, sizeof(double)) != 0)
            return false;
        for (std::size_t i = 0; i < x.apps.size(); ++i) {
            if (std::memcmp(&x.apps[i].ipc, &y.apps[i].ipc,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].bw, &y.apps[i].bw,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].l1Mr, &y.apps[i].l1Mr,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].l2Mr, &y.apps[i].l2Mr,
                            sizeof(double)) != 0)
                return false;
        }
    }
    return true;
}

class MultiprocessSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stem_ = ::testing::TempDir() + "ebm_mp_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        ref_path_ = stem_ + "_ref.cache";
        shared_path_ = stem_ + "_shared.cache";
        removeAll();
    }

    void TearDown() override { removeAll(); }

    void
    removeAll()
    {
        for (const std::string &p : {ref_path_, shared_path_}) {
            std::remove(p.c_str());
            std::remove((p + ".quarantined").c_str());
            std::remove((p + ".tmp").c_str());
            removeDirTree(p + ".claims");
        }
        for (int i = 0; i < 8; ++i)
            std::remove(statusPath(i).c_str());
    }

    std::string
    statusPath(int child) const
    {
        return stem_ + ".status." + std::to_string(child);
    }

    std::string stem_;
    std::string ref_path_;
    std::string shared_path_;
};

// ---------------------------------------------------------------------
// ShardClaims protocol units.
// ---------------------------------------------------------------------

TEST_F(MultiprocessSweepTest, ClaimIsExclusiveUntilReleased)
{
    ShardClaims claims(shared_path_);
    EXPECT_EQ(claims.peek("row"), ShardClaims::State::Absent);
    EXPECT_TRUE(claims.tryAcquire("row"));
    EXPECT_FALSE(claims.tryAcquire("row")) << "claims are exclusive";
    EXPECT_EQ(claims.peek("row"), ShardClaims::State::Active);

    // A second ShardClaims on the same store (another process's view)
    // contends for the same files.
    ShardClaims peer(shared_path_);
    EXPECT_FALSE(peer.tryAcquire("row"));
    EXPECT_EQ(peer.peek("row"), ShardClaims::State::Active);

    claims.release("row");
    EXPECT_EQ(peer.peek("row"), ShardClaims::State::Absent);
    EXPECT_TRUE(peer.tryAcquire("row"));
    peer.release("row");
}

TEST_F(MultiprocessSweepTest, DistinctKeysNeverContend)
{
    ShardClaims claims(shared_path_);
    EXPECT_TRUE(claims.tryAcquire("row/a"));
    EXPECT_TRUE(claims.tryAcquire("row/b"));
    claims.release("row/a");
    claims.release("row/b");
}

TEST_F(MultiprocessSweepTest, SkipMarkerIsDurableAndExpires)
{
    ShardClaims claims(shared_path_);
    ASSERT_TRUE(claims.tryAcquire("row"));
    claims.markSkipped("row");

    // The marker outlives the claim and blocks re-acquisition: every
    // cooperating process replicates the skip.
    EXPECT_EQ(claims.peek("row"), ShardClaims::State::Skipped);
    EXPECT_TRUE(claims.isSkipped("row"));
    EXPECT_FALSE(claims.tryAcquire("row"));

    // Past the staleness window the marker expires and is removed, so
    // the next sweep retries the row (single-process semantics: a
    // failed combination is never persisted).
    {
        ScopedEnv stale("EBM_CLAIM_STALE_MS", "1");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        EXPECT_FALSE(claims.isSkipped("row"));
        EXPECT_EQ(claims.peek("row"), ShardClaims::State::Absent);
        EXPECT_TRUE(claims.tryAcquire("row"));
        claims.release("row");
    }
}

TEST_F(MultiprocessSweepTest, StaleClaimIsBrokenAndTakenOver)
{
    ShardClaims owner(shared_path_);
    ASSERT_TRUE(owner.tryAcquire("row"));

    ShardClaims waiter(shared_path_);
    {
        // A window comfortably wider than any single check below, so
        // "fresh" observations never race the clock — but short
        // enough that waiting it out keeps the test quick.
        ScopedEnv stale("EBM_CLAIM_STALE_MS", "250");
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        EXPECT_EQ(waiter.peek("row"), ShardClaims::State::Stale);

        // A heartbeat revives the claim...
        owner.heartbeat("row");
        EXPECT_EQ(waiter.peek("row"), ShardClaims::State::Active);
        EXPECT_FALSE(waiter.breakStale("row"))
            << "a fresh claim must never be broken";

        // ...and silence lets the waiter take over.
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        EXPECT_TRUE(waiter.breakStale("row"));
        EXPECT_EQ(owner.peek("row"), ShardClaims::State::Active);
        waiter.release("row");
    }
}

// ---------------------------------------------------------------------
// Fencing epochs: a stale owner that resumes after takeover cannot
// double-release or clobber the newer epoch's claim.
// ---------------------------------------------------------------------

TEST_F(MultiprocessSweepTest, AcquireMintsMonotonicEpochs)
{
    ShardClaims claims(shared_path_);
    ASSERT_TRUE(claims.tryAcquire("row"));
    EXPECT_EQ(claims.ownedEpoch("row"), 1u);
    EXPECT_EQ(claims.claimEpoch("row"), 1u);
    EXPECT_TRUE(claims.release("row"));
    EXPECT_EQ(claims.ownedEpoch("row"), 0u) << "released = not owned";

    ASSERT_TRUE(claims.tryAcquire("row"));
    EXPECT_EQ(claims.ownedEpoch("row"), 2u)
        << "every acquisition bumps the durable epoch";
    EXPECT_TRUE(claims.release("row"));
}

TEST_F(MultiprocessSweepTest, FencedOwnerCannotReleaseOrSkip)
{
    ShardClaims owner(shared_path_);
    ASSERT_TRUE(owner.tryAcquire("row"));
    EXPECT_EQ(owner.ownedEpoch("row"), 1u);

    // The owner stalls past the staleness window; a waiter takes the
    // row over under a bumped epoch.
    ShardClaims waiter(shared_path_);
    {
        ScopedEnv stale("EBM_CLAIM_STALE_MS", "50");
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        ASSERT_TRUE(waiter.breakStale("row"));
    }
    EXPECT_EQ(waiter.ownedEpoch("row"), 2u);
    EXPECT_EQ(waiter.claimEpoch("row"), 2u);

    // The resumed stale owner is fenced on every verb: heartbeat
    // refuses to freshen the newer claim, release leaves it in place,
    // markSkipped writes no marker.
    EXPECT_FALSE(owner.heartbeat("row"));
    EXPECT_FALSE(owner.release("row"));
    EXPECT_EQ(waiter.claimEpoch("row"), 2u)
        << "the newer claim survives the stale owner's release";
    EXPECT_EQ(waiter.peek("row"), ShardClaims::State::Active);
    ASSERT_TRUE(owner.tryAcquire("other"));
    EXPECT_FALSE(owner.markSkipped("row"));
    EXPECT_FALSE(waiter.isSkipped("row"))
        << "a fenced owner must not skip the new owner's row";

    // The rightful owner's verbs still work.
    EXPECT_TRUE(waiter.heartbeat("row"));
    EXPECT_TRUE(waiter.release("row"));
    EXPECT_TRUE(owner.release("other"));
}

TEST_F(MultiprocessSweepTest, TakeoverEpochReachesTheStoreHeader)
{
    // A takeover (epoch 2) noted on the cache is stamped into the
    // header by the next append; compaction re-canonicalizes to 0.
    ShardClaims dead(shared_path_);
    ASSERT_TRUE(dead.tryAcquire("row"));
    ShardClaims taker(shared_path_);
    {
        ScopedEnv stale("EBM_CLAIM_STALE_MS", "50");
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        ASSERT_TRUE(taker.breakStale("row"));
    }

    DiskCache cache(shared_path_);
    cache.noteFencingEpoch(taker.ownedEpoch("row"));
    cache.put("row", {1.0});
    cache.sync();
    EXPECT_TRUE(taker.release("row"));

    {
        DiskCache reopened(shared_path_);
        EXPECT_EQ(reopened.loadReport().fencingEpoch, 2u);
        ASSERT_TRUE(reopened.compact());
    }
    DiskCache compacted(shared_path_);
    EXPECT_EQ(compacted.loadReport().fencingEpoch, 0u);
}

// ---------------------------------------------------------------------
// In-run heartbeat: a row longer than the staleness window must not
// look abandoned (the long-row staleness hole).
// ---------------------------------------------------------------------

TEST_F(MultiprocessSweepTest, HeartbeaterKeepsLongRowFreshAtTinyWindow)
{
    ScopedEnv stale("EBM_CLAIM_STALE_MS", "200");
    ShardClaims owner(shared_path_);
    ASSERT_TRUE(owner.tryAcquire("long-row"));

    ShardClaims peer(shared_path_);
    {
        // The heartbeater spans a "run" three windows long; the peer
        // polls throughout and must never see the claim go stale.
        ClaimHeartbeater beat(&owner, "long-row");
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(650);
        while (std::chrono::steady_clock::now() < until) {
            EXPECT_NE(peer.peek("long-row"),
                      ShardClaims::State::Stale)
                << "in-run heartbeat lost the claim mid-row";
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        EXPECT_FALSE(beat.fenced());
    }

    // Control: with the heartbeater gone, the same silence makes the
    // claim stale — proving the poll above was a real observation.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_EQ(peer.peek("long-row"), ShardClaims::State::Stale);
    EXPECT_TRUE(owner.release("long-row"));
}

/**
 * The regression scenario end-to-end: two cooperating processes, a
 * 200 ms staleness window, and rows slowed well past the window. The
 * deferring process must wait for the live owner (kept fresh by the
 * in-run heartbeat) instead of "taking over" rows that are merely
 * long — so each row is simulated exactly once across both processes.
 */
TEST_F(MultiprocessSweepTest, SlowRowsAtTinyWindowAreNotTakenOver)
{
    ScopedEnv shard("EBM_SWEEP_SHARD", "1");
    ScopedEnv stale("EBM_CLAIM_STALE_MS", "200");

    // Slow the simulation so one row comfortably exceeds the window
    // (the tiny config runs ~7k cycles in single-digit milliseconds;
    // 100x that is hundreds of milliseconds per row).
    RunOptions slow = test::tinyOptions();
    slow.warmupCycles = 1000;
    slow.measureCycles = 700000;

    const std::vector<std::uint32_t> ladder = {2};
    std::vector<pid_t> kids;
    for (int c = 0; c < 2; ++c) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            int rc = 0;
            {
                Runner runner(test::tinyConfig(2), slow);
                DiskCache cache(shared_path_);
                Exhaustive ex(runner, cache);
                ex.setJobs(1);
                const ComboTable t =
                    ex.sweep(makePair("BLK", "TRD"), ladder);
                if (t.combos.size() != 1 || t.isSkipped(0))
                    rc = 2;
                std::ofstream st(statusPath(c));
                st << ex.status().simulated << "\n";
            }
            ::_exit(rc);
        }
        kids.push_back(pid);
    }

    std::size_t total_simulated = 0;
    for (std::size_t c = 0; c < kids.size(); ++c) {
        int status = 0;
        EXPECT_EQ(::waitpid(kids[c], &status, 0), kids[c]);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "child " << c;
        std::ifstream st(statusPath(c));
        std::size_t n = 0;
        st >> n;
        total_simulated += n;
    }
    EXPECT_EQ(total_simulated, 1u)
        << "a long row was taken over from its live owner";
}

// ---------------------------------------------------------------------
// Wait-phase behavior, driven deterministically in one process.
// ---------------------------------------------------------------------

/**
 * A peer's durable skip marker is replicated: the sharded sweep
 * defers the claimed row, sees the marker, and records the same
 * skipped row a single process would after exhausting retries.
 */
TEST_F(MultiprocessSweepTest, PeerSkipMarkerIsReplicated)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");

    ShardClaims peer(shared_path_);
    const std::string key = runner.comboKey(wl.name, {4, 1});
    ASSERT_TRUE(peer.tryAcquire(key));
    peer.markSkipped(key);

    ScopedEnv shard("EBM_SWEEP_SHARD", "1");
    DiskCache cache(shared_path_);
    Exhaustive ex(runner, cache);
    ex.setJobs(1);
    const ComboTable table = ex.sweep(wl, {1, 4});

    EXPECT_EQ(ex.status().simulated, 3u);
    EXPECT_EQ(ex.status().skipped, 1u);
    EXPECT_EQ(ex.status().fromPeers, 0u);
    ASSERT_EQ(table.combos.size(), 4u);
    for (std::size_t row = 0; row < table.combos.size(); ++row) {
        EXPECT_EQ(table.isSkipped(row),
                  table.combos[row] == TlpCombo({4, 1}))
            << "row " << row;
    }
}

/**
 * A claim whose owner died (no heartbeat) is taken over: the sweep
 * defers the row, waits out the staleness window, breaks the claim,
 * and simulates the row itself — no gap in the table.
 */
TEST_F(MultiprocessSweepTest, StaleClaimedRowIsTakenOverBySweep)
{
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");

    ShardClaims dead(shared_path_);
    ASSERT_TRUE(dead.tryAcquire(runner.comboKey(wl.name, {4, 4})));

    ScopedEnv shard("EBM_SWEEP_SHARD", "1");
    ScopedEnv stale("EBM_CLAIM_STALE_MS", "1");
    DiskCache cache(shared_path_);
    Exhaustive ex(runner, cache);
    ex.setJobs(1);
    const ComboTable table = ex.sweep(wl, {1, 4});

    EXPECT_EQ(ex.status().simulated, 4u);
    EXPECT_EQ(ex.status().skipped, 0u);
    ASSERT_EQ(table.combos.size(), 4u);
    for (std::size_t row = 0; row < table.combos.size(); ++row)
        EXPECT_FALSE(table.isSkipped(row)) << "row " << row;

    // A plain (unsharded) sweep of the same ladder is bit-identical.
    DiskCache ref_cache(ref_path_);
    Exhaustive ref(runner, ref_cache);
    ref.setJobs(1);
    EXPECT_TRUE(tablesBitIdentical(ref.sweep(wl, {1, 4}), table));
}

// ---------------------------------------------------------------------
// The forked acceptance scenario.
// ---------------------------------------------------------------------

/**
 * Fork @p num_procs children that cooperatively run one cold sweep
 * (EBM_SWEEP_SHARD=1) through @p shared_path at @p jobs worker
 * threads each, verifying every child's table against @p ref inside
 * the child. @return the children's simulated-row counts.
 */
std::vector<std::size_t>
runShardedChildren(int num_procs, std::uint32_t jobs_count,
                   const std::string &shared_path,
                   const std::string &status_stem,
                   const ComboTable &ref,
                   const std::vector<std::uint32_t> &ladder,
                   const FaultInjector *armed_injector)
{
    std::vector<pid_t> kids;
    for (int c = 0; c < num_procs; ++c) {
        const pid_t pid = ::fork();
        EXPECT_GE(pid, 0);
        if (pid == 0) {
            // Child: a fresh cooperating process. No gtest assertions
            // here — failures are reported through the exit code.
            int rc = 0;
            {
                RunOptions opts = test::tinyOptions();
                std::optional<FaultInjector> fi;
                if (armed_injector != nullptr) {
                    // Same seed in every process: the pre-drawn fault
                    // schedule is identical everywhere.
                    fi.emplace(*armed_injector);
                    opts.faultInjector = &*fi;
                }
                Runner runner(test::tinyConfig(2), opts);
                DiskCache cache(shared_path);
                Exhaustive ex(runner, cache);
                ex.setJobs(jobs_count);
                const ComboTable mine =
                    ex.sweep(makePair("BLK", "TRD"), ladder);
                if (!tablesBitIdentical(ref, mine))
                    rc = 2;
                std::ofstream st(status_stem + ".status." +
                                 std::to_string(c));
                st << ex.status().simulated << "\n";
            }
            ::_exit(rc);
        }
        kids.push_back(pid);
    }

    std::vector<std::size_t> simulated;
    for (std::size_t c = 0; c < kids.size(); ++c) {
        int status = 0;
        EXPECT_EQ(::waitpid(kids[c], &status, 0), kids[c]);
        EXPECT_TRUE(WIFEXITED(status)) << "child " << c;
        EXPECT_EQ(WEXITSTATUS(status), 0)
            << "child " << c
            << " saw a table differing from the single-process one";
        std::ifstream st(status_stem + ".status." + std::to_string(c));
        std::size_t n = 0;
        st >> n;
        simulated.push_back(n);
    }
    return simulated;
}

/**
 * The acceptance test: {2, 4} cooperating processes × EBM_JOBS
 * {1, 8} fill one cold paper-shaped 64-combination sweep through a
 * shared store. Every process's table is bit-identical to the
 * single-process table, the union of their work covers the sweep, and
 * the compacted shared store is byte-identical to the single-process
 * store.
 */
TEST_F(MultiprocessSweepTest, ForkedColdSweepMatchesSingleProcess)
{
    const std::vector<std::uint32_t> ladder = {1, 2, 3, 4, 5, 6, 7, 8};
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");

    // The single-process reference (sharding off), compacted.
    ComboTable ref;
    std::string ref_bytes;
    {
        DiskCache cache(ref_path_);
        Exhaustive ex(runner, cache);
        ex.setJobs(1);
        ref = ex.sweep(wl, ladder);
        ASSERT_EQ(ex.status().simulated, 64u);
        ASSERT_TRUE(cache.compact());
        ref_bytes = slurp(ref_path_);
        ASSERT_FALSE(ref_bytes.empty());
    }

    ScopedEnv shard("EBM_SWEEP_SHARD", "1");
    const struct
    {
        int procs;
        std::uint32_t jobs;
    } grid[] = {{2, 1}, {2, 8}, {4, 1}};
    for (const auto &cfg : grid) {
        std::remove(shared_path_.c_str());
        removeDirTree(shared_path_ + ".claims");

        const std::vector<std::size_t> simulated = runShardedChildren(
            cfg.procs, cfg.jobs, shared_path_, stem_, ref, ladder,
            nullptr);

        // Cold store: every row was simulated by some process, and
        // rows are not re-simulated barring a benign takeover race.
        std::size_t sum = 0;
        for (const std::size_t n : simulated)
            sum += n;
        EXPECT_GE(sum, 64u) << cfg.procs << "p/" << cfg.jobs << "j";
        EXPECT_LE(sum, 72u)
            << cfg.procs << "p/" << cfg.jobs
            << "j: cooperating processes re-simulated most rows";

        // The shared store, compacted, is the single-process bytes.
        DiskCache merged(shared_path_);
        EXPECT_FALSE(merged.loadReport().quarantined);
        EXPECT_EQ(merged.size(), 64u);
        ASSERT_TRUE(merged.compact());
        EXPECT_EQ(slurp(shared_path_), ref_bytes)
            << cfg.procs << "p/" << cfg.jobs << "j";
    }
}

/**
 * The same acceptance scenario with the RunFail injector armed: the
 * persistently failing combination is skipped by whichever process
 * claims it, the skip marker is replicated everywhere, and the tables
 * still match the single-process injected run.
 */
TEST_F(MultiprocessSweepTest, ForkedSweepWithInjectedFailuresMatches)
{
    const std::vector<std::uint32_t> ladder = {1, 4};
    FaultInjector seed_injector(5);
    seed_injector.armAfter(Point::RunFail, 2, 3);

    // Single-process reference with the identical injector state.
    ComboTable ref;
    std::string ref_bytes;
    {
        RunOptions opts = test::tinyOptions();
        FaultInjector fi(seed_injector);
        opts.faultInjector = &fi;
        Runner runner(test::tinyConfig(2), opts);
        DiskCache cache(ref_path_);
        Exhaustive ex(runner, cache);
        ex.setJobs(1);
        ref = ex.sweep(makePair("BLK", "TRD"), ladder);
        EXPECT_EQ(ex.status().retried, 2u);
        EXPECT_EQ(ex.status().skipped, 1u);
        ASSERT_TRUE(cache.compact());
        ref_bytes = slurp(ref_path_);
    }

    ScopedEnv shard("EBM_SWEEP_SHARD", "1");
    const std::vector<std::size_t> simulated = runShardedChildren(
        2, 1, shared_path_, stem_, ref, ladder, &seed_injector);

    // 3 of 4 rows succeed; the fourth is skipped, not duplicated.
    std::size_t sum = 0;
    for (const std::size_t n : simulated)
        sum += n;
    EXPECT_GE(sum, 3u);
    EXPECT_LE(sum, 6u);

    DiskCache merged(shared_path_);
    EXPECT_EQ(merged.size(), 3u)
        << "the skipped combination must never be persisted";
    ASSERT_TRUE(merged.compact());
    EXPECT_EQ(slurp(shared_path_), ref_bytes);
}

} // namespace
} // namespace ebm
