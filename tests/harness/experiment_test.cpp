#include "harness/experiment.hpp"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

TEST(Gmean, MatchesHandComputation)
{
    EXPECT_NEAR(gmean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(gmean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(gmean({1.0, 2.0, 4.0}), 2.0, 1e-12);
}

TEST(Gmean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(gmean({}), 0.0);
}

TEST(GmeanDeath, NonPositiveIsFatal)
{
    EXPECT_EBM_FATAL(gmean({1.0, 0.0}), "non-positive");
}

TEST(ExperimentConfig, StandardConfigMatchesDesign)
{
    const GpuConfig cfg = Experiment::standardConfig(2);
    EXPECT_EQ(cfg.numApps, 2u);
    EXPECT_EQ(cfg.numCores, 16u);
    EXPECT_EQ(cfg.numPartitions, 6u);
    cfg.validate();
}

TEST(ExperimentConfig, StandardOptionsArePositive)
{
    const RunOptions opts = Experiment::standardOptions();
    EXPECT_GT(opts.measureCycles, 0u);
    EXPECT_GT(opts.windowCycles, 0u);
}

/** PBS offline against a synthetic table (no simulation). */
TEST(PbsOffline, AgreesWithSearchOnSyntheticTable)
{
    // Build a table over a tiny ladder with app 0 critical.
    ComboTable table;
    table.levels = {1, 2, 4, 8};
    // Fill in odometer order matching Exhaustive::sweep.
    std::vector<std::size_t> idx(2, 0);
    while (true) {
        TlpCombo combo = {table.levels[idx[0]], table.levels[idx[1]]};
        RunResult r;
        r.apps.resize(2);
        const double t0 = combo[0], t1 = combo[1];
        r.apps[0].bw = t0 <= 2 ? 0.2 * t0 : std::max(0.1, 0.5 - 0.1 * t0);
        r.apps[1].bw = 0.4 * t1 / (t1 + 2.0);
        r.finalTlp = combo;
        table.combos.push_back(combo);
        table.results.push_back(std::move(r));
        std::uint32_t pos = 0;
        while (pos < 2) {
            if (++idx[pos] < table.levels.size())
                break;
            idx[pos] = 0;
            ++pos;
        }
        if (pos == 2)
            break;
    }

    Experiment exp(2, ::testing::TempDir() + "exp_cache1.txt");
    std::uint32_t samples = 0;
    const TlpCombo combo = exp.pbsOffline(table, EbObjective::WS,
                                          ScalingMode::None, {},
                                          &samples);
    EXPECT_GT(samples, 0u);
    EXPECT_LT(samples, table.combos.size());
    // Near-optimal vs the table's own brute force.
    const TlpCombo bf = Exhaustive::argmax(table, OptTarget::EbWS);
    const double got =
        Exhaustive::value(table, combo, OptTarget::EbWS);
    const double best = Exhaustive::value(table, bf, OptTarget::EbWS);
    EXPECT_GE(got, 0.9 * best);
}

TEST(ScoreMath, ScoresUseAloneIpcs)
{
    // score() is exercised with a fabricated result to avoid long
    // profiling runs here (integration tests cover the full path).
    SdScores s;
    s.sds = {0.5, 0.5};
    EXPECT_DOUBLE_EQ(weightedSpeedup(s.sds), 1.0);
}

} // namespace
} // namespace ebm
