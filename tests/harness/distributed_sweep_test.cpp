/**
 * @file
 * The networked sweep fabric end-to-end: an in-process Coordinator
 * over the authoritative store, with forked worker processes running
 * the ordinary profile/sweep dispatch loop against leased rows over
 * localhost TCP (EBM_COORDINATOR). The acceptance contract is the
 * same one the filesystem protocol locks in the multiprocess suite —
 * every worker's table bit-identical to a serial run, the compacted
 * coordinator store byte-identical to a serial fill — plus the
 * fabric-specific failure modes: workers SIGKILLed mid-lease and
 * mid-sweep, and RunFail-injected workers replicating skips over the
 * wire.
 *
 * Fork discipline: the Coordinator is bind()ed before any fork and
 * start()ed after — children inherit one quiet listening fd, never a
 * running thread's locks (their connects queue in the backlog).
 */
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/fault_injector.hpp"
#include "harness/coordinator.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"
#include "harness/lease_net.hpp"
#include "harness/profile_db.hpp"
#include "harness/sweep_supervisor.hpp"

namespace ebm {
namespace {

using Point = FaultInjector::Point;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Remove a flat directory (claim dirs hold no subdirectories). */
void
removeDirTree(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d != nullptr) {
        while (struct dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

/** Bitwise table equality (the cross-machine identity contract). */
bool
tablesBitIdentical(const ComboTable &a, const ComboTable &b)
{
    if (a.combos != b.combos || a.levels != b.levels ||
        a.skipped != b.skipped)
        return false;
    for (std::size_t row = 0; row < a.results.size(); ++row) {
        const RunResult &x = a.results[row];
        const RunResult &y = b.results[row];
        if (x.apps.size() != y.apps.size() ||
            x.measuredCycles != y.measuredCycles ||
            x.finalTlp != y.finalTlp)
            return false;
        if (std::memcmp(&x.totalBw, &y.totalBw, sizeof(double)) != 0)
            return false;
        for (std::size_t i = 0; i < x.apps.size(); ++i) {
            if (std::memcmp(&x.apps[i].ipc, &y.apps[i].ipc,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].bw, &y.apps[i].bw,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].l1Mr, &y.apps[i].l1Mr,
                            sizeof(double)) != 0 ||
                std::memcmp(&x.apps[i].l2Mr, &y.apps[i].l2Mr,
                            sizeof(double)) != 0)
                return false;
        }
    }
    return true;
}

class DistributedSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("EBM_COORDINATOR");
        stem_ = ::testing::TempDir() + "ebm_dist_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        ref_path_ = stem_ + "_ref.cache";
        dist_path_ = stem_ + "_dist.cache";
        removeAll();
    }

    void TearDown() override { removeAll(); }

    void
    removeAll()
    {
        std::vector<std::string> paths = {ref_path_, dist_path_};
        for (int i = 0; i < 8; ++i) {
            paths.push_back(scratchPath(i));
            std::remove(statusPath(i).c_str());
            std::remove(readyPath(i).c_str());
        }
        for (const std::string &p : paths) {
            std::remove(p.c_str());
            std::remove((p + ".quarantined").c_str());
            std::remove((p + ".tmp").c_str());
            removeDirTree(p + ".claims");
        }
    }

    std::string
    statusPath(int child) const
    {
        return stem_ + ".status." + std::to_string(child);
    }

    std::string
    scratchPath(int child) const
    {
        return stem_ + "_scratch" + std::to_string(child) + ".cache";
    }

    std::string
    readyPath(int child) const
    {
        return stem_ + ".ready." + std::to_string(child);
    }

    /** Serial reference fill: sweep (and optionally profile) into
     * ref_path_, compact, and return the compacted bytes. */
    std::string
    fillSerialReference(const RunOptions &opts,
                        const std::vector<std::uint32_t> &ladder,
                        ComboTable &ref_table, bool with_profiles,
                        const FaultInjector *armed_injector = nullptr)
    {
        RunOptions run_opts = opts;
        std::optional<FaultInjector> fi;
        if (armed_injector != nullptr) {
            fi.emplace(*armed_injector);
            run_opts.faultInjector = &*fi;
        }
        Runner runner(test::tinyConfig(2), run_opts);
        DiskCache cache(ref_path_);
        if (with_profiles) {
            ProfileDb profiles(runner, cache);
            for (const AppProfile &app :
                 resolveApps(makePair("BLK", "TRD")))
                profiles.profile(app);
        }
        Exhaustive ex(runner, cache);
        ex.setJobs(1);
        ref_table = ex.sweep(makePair("BLK", "TRD"), ladder);
        EXPECT_TRUE(cache.compact());
        const std::string bytes = slurp(ref_path_);
        EXPECT_FALSE(bytes.empty());
        return bytes;
    }

    /** Fork one distributed worker child running the ordinary
     * dispatch loop against the coordinator at @p address. The child
     * exits 0 only when its table is bit-identical to @p ref. */
    pid_t
    forkWorker(int child, const std::string &address,
               const RunOptions &opts,
               const std::vector<std::uint32_t> &ladder,
               const ComboTable &ref, std::uint32_t jobs_count,
               bool with_profiles,
               const FaultInjector *armed_injector = nullptr,
               int start_delay_ms = 0)
    {
        const pid_t pid = ::fork();
        EXPECT_GE(pid, 0);
        if (pid != 0)
            return pid;
        // Child: a fresh worker process. No gtest assertions here —
        // failures are reported through the exit code.
        int rc = 0;
        {
            ::setenv("EBM_COORDINATOR", address.c_str(), 1);
            if (start_delay_ms > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(start_delay_ms));
            }
            RunOptions run_opts = opts;
            std::optional<FaultInjector> fi;
            if (armed_injector != nullptr) {
                // Same seed in every process: the pre-drawn fault
                // schedule is identical everywhere.
                fi.emplace(*armed_injector);
                run_opts.faultInjector = &*fi;
            }
            Runner runner(test::tinyConfig(2), run_opts);
            DiskCache scratch(scratchPath(child));
            if (with_profiles) {
                ProfileDb profiles(runner, scratch);
                for (const AppProfile &app :
                     resolveApps(makePair("BLK", "TRD")))
                    profiles.profile(app);
            }
            Exhaustive ex(runner, scratch);
            ex.setJobs(jobs_count);
            const ComboTable mine =
                ex.sweep(makePair("BLK", "TRD"), ladder);
            if (!tablesBitIdentical(ref, mine))
                rc = 2;
            std::ofstream st(statusPath(child));
            st << ex.status().simulated << "\n";
        }
        ::_exit(rc);
    }

    /** waitpid one child and require a clean zero exit. */
    std::size_t
    reapWorker(pid_t pid, int child)
    {
        int status = 0;
        EXPECT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status)) << "child " << child;
        EXPECT_EQ(WEXITSTATUS(status), 0)
            << "child " << child
            << " saw a table differing from the serial one";
        std::ifstream st(statusPath(child));
        std::size_t n = 0;
        st >> n;
        return n;
    }

    std::string stem_;
    std::string ref_path_;
    std::string dist_path_;
};

/**
 * The acceptance scenario: {2, 4} workers × jobs {1, 8} cold-fill one
 * paper-shaped 64-combination sweep through the coordinator. Every
 * worker's table is bit-identical to the serial table, the union of
 * their work covers the sweep exactly once (modulo benign takeover
 * races), and the compacted coordinator store is byte-identical to
 * the serial store.
 */
TEST_F(DistributedSweepTest, ForkedColdFillMatchesSerial)
{
    const std::vector<std::uint32_t> ladder = {1, 2, 3, 4,
                                               5, 6, 7, 8};
    ComboTable ref;
    const std::string ref_bytes = fillSerialReference(
        test::tinyOptions(), ladder, ref, /*with_profiles=*/false);
    ASSERT_EQ(ref.combos.size(), 64u);

    const struct
    {
        int workers;
        std::uint32_t jobs;
    } grid[] = {{2, 1}, {4, 1}, {2, 8}};
    for (const auto &cfg : grid) {
        removeAll();
        DiskCache dist(dist_path_);
        Coordinator coordinator(dist, Coordinator::Options{});
        ASSERT_TRUE(coordinator.bind().ok());
        const std::string address = coordinator.address();

        std::vector<pid_t> kids;
        for (int c = 0; c < cfg.workers; ++c) {
            kids.push_back(forkWorker(c, address, test::tinyOptions(),
                                      ladder, ref, cfg.jobs,
                                      /*with_profiles=*/false));
        }
        ASSERT_TRUE(coordinator.start().ok());

        std::size_t sum = 0;
        for (std::size_t c = 0; c < kids.size(); ++c)
            sum += reapWorker(kids[c], static_cast<int>(c));
        coordinator.stop();

        // Cold store: every row was simulated by some worker, and
        // rows are not re-simulated barring a benign takeover race.
        EXPECT_GE(sum, 64u) << cfg.workers << "w/" << cfg.jobs << "j";
        EXPECT_LE(sum, 72u)
            << cfg.workers << "w/" << cfg.jobs
            << "j: workers re-simulated most rows";
        const Coordinator::Stats stats = coordinator.stats();
        EXPECT_GE(stats.recordsCommitted, 64u);
        EXPECT_GE(stats.connections,
                  static_cast<std::uint64_t>(cfg.workers));

        // The coordinator's store, compacted, is the serial bytes.
        dist.sync();
        ASSERT_TRUE(dist.compact());
        EXPECT_EQ(slurp(dist_path_), ref_bytes)
            << cfg.workers << "w/" << cfg.jobs << "j";
    }
}

/**
 * Both dispatch gates over the wire: workers run the full
 * profile-then-sweep loop (alone tables via ProfileDb, combo rows via
 * Exhaustive), and the compacted coordinator store — alone and combo
 * records together — is byte-identical to the serial fill.
 */
TEST_F(DistributedSweepTest, ProfileAndSweepViaCoordinatorMatchSerial)
{
    const std::vector<std::uint32_t> ladder = {1, 4};
    ComboTable ref;
    const std::string ref_bytes = fillSerialReference(
        test::tinyOptions(), ladder, ref, /*with_profiles=*/true);

    DiskCache dist(dist_path_);
    Coordinator coordinator(dist, Coordinator::Options{});
    ASSERT_TRUE(coordinator.bind().ok());
    std::vector<pid_t> kids;
    for (int c = 0; c < 2; ++c) {
        kids.push_back(forkWorker(c, coordinator.address(),
                                  test::tinyOptions(), ladder, ref, 1,
                                  /*with_profiles=*/true));
    }
    ASSERT_TRUE(coordinator.start().ok());
    for (std::size_t c = 0; c < kids.size(); ++c)
        reapWorker(kids[c], static_cast<int>(c));
    coordinator.stop();

    dist.sync();
    ASSERT_TRUE(dist.compact());
    EXPECT_EQ(slurp(dist_path_), ref_bytes);
}

/**
 * A worker SIGKILLed while holding a lease: the drop of its
 * connection orphans the lease at the coordinator, the surviving
 * worker sees STALE without waiting out the (deliberately generous)
 * staleness window, takes the row over under a bumped epoch, and the
 * compacted store still matches the serial fill.
 */
TEST_F(DistributedSweepTest, WorkerKilledMidLeaseIsTakenOver)
{
    const std::vector<std::uint32_t> ladder = {1, 4};
    ComboTable ref;
    const std::string ref_bytes = fillSerialReference(
        test::tinyOptions(), ladder, ref, /*with_profiles=*/false);

    DiskCache dist(dist_path_);
    Coordinator::Options copts;
    // Generous window: the takeover below must come from the orphan
    // rule (connection death), never from clock-based staleness.
    copts.staleThreshold = std::chrono::seconds(60);
    Coordinator coordinator(dist, copts);
    ASSERT_TRUE(coordinator.bind().ok());
    const std::string address = coordinator.address();

    Runner key_runner(test::tinyConfig(2), test::tinyOptions());
    const std::string held_key =
        key_runner.comboKey(makePair("BLK", "TRD").name, {4, 4});

    // Child 0: the doomed lease holder — acquires one row, signals
    // readiness, then stalls as if wedged mid-simulation.
    const pid_t doomed = ::fork();
    ASSERT_GE(doomed, 0);
    if (doomed == 0) {
        int rc = 3;
        {
            auto lease = NetLeaseProvider::connect(address);
            if (lease != nullptr && lease->tryAcquire(held_key)) {
                std::ofstream ready(readyPath(0));
                ready << "held\n";
                std::this_thread::sleep_for(std::chrono::seconds(60));
            }
        }
        ::_exit(rc);
    }

    // Child 1: an ordinary worker. It starts once the doomed child
    // holds the row, so the contention is guaranteed.
    const pid_t worker = ::fork();
    ASSERT_GE(worker, 0);
    if (worker == 0) {
        int rc = 0;
        {
            for (int i = 0; i < 2000; ++i) {
                std::ifstream ready(readyPath(0));
                if (ready.good())
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
            ::setenv("EBM_COORDINATOR", address.c_str(), 1);
            Runner runner(test::tinyConfig(2), test::tinyOptions());
            DiskCache scratch(scratchPath(1));
            Exhaustive ex(runner, scratch);
            ex.setJobs(1);
            const ComboTable mine =
                ex.sweep(makePair("BLK", "TRD"), ladder);
            if (!tablesBitIdentical(ref, mine))
                rc = 2;
            std::ofstream st(statusPath(1));
            st << ex.status().simulated << "\n";
        }
        ::_exit(rc);
    }

    ASSERT_TRUE(coordinator.start().ok());

    // Kill the holder once its lease is visible over the wire.
    {
        auto observer = NetLeaseProvider::connect(address);
        ASSERT_NE(observer, nullptr);
        LeaseProvider::State s = LeaseProvider::State::Absent;
        for (int i = 0; i < 2000; ++i) {
            s = observer->peek(held_key);
            if (s == LeaseProvider::State::Active)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ASSERT_EQ(s, LeaseProvider::State::Active);
    }
    ASSERT_EQ(::kill(doomed, SIGKILL), 0);
    int status = 0;
    EXPECT_EQ(::waitpid(doomed, &status, 0), doomed);
    EXPECT_TRUE(WIFSIGNALED(status));

    // The survivor fills the whole table (the dead worker published
    // nothing) and its bytes match the serial fill.
    EXPECT_EQ(reapWorker(worker, 1), 4u);
    coordinator.stop();
    const Coordinator::Stats stats = coordinator.stats();
    EXPECT_GE(stats.orphanedLeases, 1u);
    EXPECT_GE(stats.takeovers, 1u);

    dist.sync();
    ASSERT_TRUE(dist.compact());
    EXPECT_EQ(slurp(dist_path_), ref_bytes);
}

/**
 * A worker SIGKILLed mid-sweep (rows slowed so the kill lands while
 * work is in flight): whatever it was doing — holding leases,
 * streaming a record — the survivor completes the table and the
 * compacted store is byte-identical to a crash-free serial fill.
 */
TEST_F(DistributedSweepTest, WorkerKilledMidSweepIsRecovered)
{
    // ~100ms per row: 16 rows of work stay in flight long enough for
    // the kill below to land mid-sweep on any machine.
    RunOptions slow = test::tinyOptions();
    slow.measureCycles = 200000;
    const std::vector<std::uint32_t> ladder = {1, 2, 3, 4};

    ComboTable ref;
    const std::string ref_bytes = fillSerialReference(
        slow, ladder, ref, /*with_profiles=*/false);
    ASSERT_EQ(ref.combos.size(), 16u);

    DiskCache dist(dist_path_);
    Coordinator coordinator(dist, Coordinator::Options{});
    ASSERT_TRUE(coordinator.bind().ok());
    const std::string address = coordinator.address();

    const pid_t survivor = forkWorker(0, address, slow, ladder, ref, 1,
                                      /*with_profiles=*/false);
    const pid_t victim = forkWorker(1, address, slow, ladder, ref, 1,
                                    /*with_profiles=*/false);
    ASSERT_TRUE(coordinator.start().ok());

    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_EQ(::kill(victim, SIGKILL), 0);
    int status = 0;
    EXPECT_EQ(::waitpid(victim, &status, 0), victim);

    EXPECT_GE(reapWorker(survivor, 0), 1u);
    coordinator.stop();

    dist.sync();
    ASSERT_TRUE(dist.compact());
    EXPECT_EQ(slurp(dist_path_), ref_bytes);
}

/**
 * RunFail-injected workers over the wire: the persistently failing
 * combination is skipped by whichever worker claims it, the skip
 * marker is replicated through SKIPMARK/PEEK instead of sidecar
 * files, and the compacted store matches the injected serial run.
 */
TEST_F(DistributedSweepTest, InjectedFailuresReplicateSkipsOverTheWire)
{
    const std::vector<std::uint32_t> ladder = {1, 4};
    FaultInjector seed_injector(5);
    seed_injector.armAfter(Point::RunFail, 2, 3);

    ComboTable ref;
    const std::string ref_bytes = fillSerialReference(
        test::tinyOptions(), ladder, ref, /*with_profiles=*/false,
        &seed_injector);

    DiskCache dist(dist_path_);
    Coordinator coordinator(dist, Coordinator::Options{});
    ASSERT_TRUE(coordinator.bind().ok());
    std::vector<pid_t> kids;
    for (int c = 0; c < 2; ++c) {
        kids.push_back(forkWorker(c, coordinator.address(),
                                  test::tinyOptions(), ladder, ref, 1,
                                  /*with_profiles=*/false,
                                  &seed_injector));
    }
    ASSERT_TRUE(coordinator.start().ok());
    std::size_t sum = 0;
    for (std::size_t c = 0; c < kids.size(); ++c)
        sum += reapWorker(kids[c], static_cast<int>(c));
    coordinator.stop();

    // 3 of 4 rows succeed; the fourth is skipped, not duplicated.
    EXPECT_GE(sum, 3u);
    EXPECT_LE(sum, 6u);
    EXPECT_GE(coordinator.stats().skipsMarked, 1u);

    dist.sync();
    dist.refresh();
    EXPECT_EQ(dist.size(), 3u)
        << "the skipped combination must never be persisted";
    ASSERT_TRUE(dist.compact());
    EXPECT_EQ(slurp(dist_path_), ref_bytes);
}

/**
 * The supervisor exports Options::coordinator into each worker child
 * as EBM_COORDINATOR — and only into the children, never the parent.
 */
TEST_F(DistributedSweepTest, SupervisorExportsCoordinatorToWorkers)
{
    SweepSupervisor::Options opts;
    opts.workers = 2;
    opts.coordinator = "127.0.0.1:7733";
    SweepSupervisor supervisor(opts);
    const SweepSupervisor::Report report = supervisor.run(
        [&](std::uint32_t, std::uint32_t) {
            const char *env = std::getenv("EBM_COORDINATOR");
            return (env != nullptr &&
                    std::string(env) == "127.0.0.1:7733")
                       ? 0
                       : 7;
        });
    EXPECT_TRUE(report.allSucceeded)
        << "a supervised worker did not see EBM_COORDINATOR";
    EXPECT_EQ(std::getenv("EBM_COORDINATOR"), nullptr)
        << "the parent's environment must stay untouched";
}

} // namespace
} // namespace ebm
