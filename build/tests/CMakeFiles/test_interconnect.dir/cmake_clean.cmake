file(REMOVE_RECURSE
  "CMakeFiles/test_interconnect.dir/interconnect/crossbar_test.cpp.o"
  "CMakeFiles/test_interconnect.dir/interconnect/crossbar_test.cpp.o.d"
  "test_interconnect"
  "test_interconnect.pdb"
  "test_interconnect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
