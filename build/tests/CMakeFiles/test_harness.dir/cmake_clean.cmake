file(REMOVE_RECURSE
  "CMakeFiles/test_harness.dir/harness/disk_cache_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/disk_cache_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/exhaustive_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/exhaustive_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/experiment_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/experiment_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/report_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/report_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/runner_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/runner_test.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/table_test.cpp.o"
  "CMakeFiles/test_harness.dir/harness/table_test.cpp.o.d"
  "test_harness"
  "test_harness.pdb"
  "test_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
