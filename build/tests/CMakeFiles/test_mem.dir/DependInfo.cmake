
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/address_map_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/address_map_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/address_map_test.cpp.o.d"
  "/root/repo/tests/mem/cache_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/cache_test.cpp.o.d"
  "/root/repo/tests/mem/dram_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/dram_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/dram_test.cpp.o.d"
  "/root/repo/tests/mem/dram_timing_property_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/dram_timing_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/dram_timing_property_test.cpp.o.d"
  "/root/repo/tests/mem/memory_partition_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/memory_partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/memory_partition_test.cpp.o.d"
  "/root/repo/tests/mem/mshr_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/mshr_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/mshr_test.cpp.o.d"
  "/root/repo/tests/mem/tag_array_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/tag_array_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/tag_array_test.cpp.o.d"
  "/root/repo/tests/mem/way_partition_test.cpp" "tests/CMakeFiles/test_mem.dir/mem/way_partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/way_partition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ebm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ebm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ebm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ebm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ebm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ebm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ebm_common.dir/DependInfo.cmake"
  "/root/repo/build/_googletest/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  "/root/repo/build/_googletest/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
