# Empty compiler generated dependencies file for tab04_app_table.
# This may be replaced when dependencies are built.
