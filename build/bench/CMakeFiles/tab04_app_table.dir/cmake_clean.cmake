file(REMOVE_RECURSE
  "CMakeFiles/tab04_app_table.dir/tab04_app_table.cpp.o"
  "CMakeFiles/tab04_app_table.dir/tab04_app_table.cpp.o.d"
  "tab04_app_table"
  "tab04_app_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_app_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
