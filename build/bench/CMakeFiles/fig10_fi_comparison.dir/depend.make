# Empty dependencies file for fig10_fi_comparison.
# This may be replaced when dependencies are built.
