file(REMOVE_RECURSE
  "CMakeFiles/fig06_patterns_ws.dir/fig06_patterns_ws.cpp.o"
  "CMakeFiles/fig06_patterns_ws.dir/fig06_patterns_ws.cpp.o.d"
  "fig06_patterns_ws"
  "fig06_patterns_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_patterns_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
