# Empty dependencies file for fig06_patterns_ws.
# This may be replaced when dependencies are built.
