file(REMOVE_RECURSE
  "CMakeFiles/fig11_tlp_timeline.dir/fig11_tlp_timeline.cpp.o"
  "CMakeFiles/fig11_tlp_timeline.dir/fig11_tlp_timeline.cpp.o.d"
  "fig11_tlp_timeline"
  "fig11_tlp_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tlp_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
