# Empty compiler generated dependencies file for fig11_tlp_timeline.
# This may be replaced when dependencies are built.
