# Empty compiler generated dependencies file for sec6c_hs_comparison.
# This may be replaced when dependencies are built.
