file(REMOVE_RECURSE
  "CMakeFiles/sec6c_hs_comparison.dir/sec6c_hs_comparison.cpp.o"
  "CMakeFiles/sec6c_hs_comparison.dir/sec6c_hs_comparison.cpp.o.d"
  "sec6c_hs_comparison"
  "sec6c_hs_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6c_hs_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
