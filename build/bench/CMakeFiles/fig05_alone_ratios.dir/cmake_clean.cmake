file(REMOVE_RECURSE
  "CMakeFiles/fig05_alone_ratios.dir/fig05_alone_ratios.cpp.o"
  "CMakeFiles/fig05_alone_ratios.dir/fig05_alone_ratios.cpp.o.d"
  "fig05_alone_ratios"
  "fig05_alone_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_alone_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
