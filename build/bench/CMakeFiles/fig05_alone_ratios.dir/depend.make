# Empty dependencies file for fig05_alone_ratios.
# This may be replaced when dependencies are built.
