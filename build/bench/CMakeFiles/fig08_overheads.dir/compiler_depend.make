# Empty compiler generated dependencies file for fig08_overheads.
# This may be replaced when dependencies are built.
