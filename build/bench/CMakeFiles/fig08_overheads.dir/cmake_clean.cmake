file(REMOVE_RECURSE
  "CMakeFiles/fig08_overheads.dir/fig08_overheads.cpp.o"
  "CMakeFiles/fig08_overheads.dir/fig08_overheads.cpp.o.d"
  "fig08_overheads"
  "fig08_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
