# Empty compiler generated dependencies file for fig09_ws_comparison.
# This may be replaced when dependencies are built.
