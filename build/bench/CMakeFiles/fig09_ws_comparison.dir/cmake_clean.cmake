file(REMOVE_RECURSE
  "CMakeFiles/fig09_ws_comparison.dir/fig09_ws_comparison.cpp.o"
  "CMakeFiles/fig09_ws_comparison.dir/fig09_ws_comparison.cpp.o.d"
  "fig09_ws_comparison"
  "fig09_ws_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ws_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
