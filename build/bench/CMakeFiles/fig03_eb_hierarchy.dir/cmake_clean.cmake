file(REMOVE_RECURSE
  "CMakeFiles/fig03_eb_hierarchy.dir/fig03_eb_hierarchy.cpp.o"
  "CMakeFiles/fig03_eb_hierarchy.dir/fig03_eb_hierarchy.cpp.o.d"
  "fig03_eb_hierarchy"
  "fig03_eb_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_eb_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
