# Empty dependencies file for fig03_eb_hierarchy.
# This may be replaced when dependencies are built.
