# Empty compiler generated dependencies file for abl_signal_choice.
# This may be replaced when dependencies are built.
