file(REMOVE_RECURSE
  "CMakeFiles/abl_signal_choice.dir/abl_signal_choice.cpp.o"
  "CMakeFiles/abl_signal_choice.dir/abl_signal_choice.cpp.o.d"
  "abl_signal_choice"
  "abl_signal_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_signal_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
