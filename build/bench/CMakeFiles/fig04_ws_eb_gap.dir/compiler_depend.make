# Empty compiler generated dependencies file for fig04_ws_eb_gap.
# This may be replaced when dependencies are built.
