file(REMOVE_RECURSE
  "CMakeFiles/fig04_ws_eb_gap.dir/fig04_ws_eb_gap.cpp.o"
  "CMakeFiles/fig04_ws_eb_gap.dir/fig04_ws_eb_gap.cpp.o.d"
  "fig04_ws_eb_gap"
  "fig04_ws_eb_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_ws_eb_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
