# Empty dependencies file for fig07_patterns_fi_hs.
# This may be replaced when dependencies are built.
