file(REMOVE_RECURSE
  "CMakeFiles/fig07_patterns_fi_hs.dir/fig07_patterns_fi_hs.cpp.o"
  "CMakeFiles/fig07_patterns_fi_hs.dir/fig07_patterns_fi_hs.cpp.o.d"
  "fig07_patterns_fi_hs"
  "fig07_patterns_fi_hs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_patterns_fi_hs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
