# Empty compiler generated dependencies file for fig02_tlp_effects.
# This may be replaced when dependencies are built.
