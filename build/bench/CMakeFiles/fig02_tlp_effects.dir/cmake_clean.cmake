file(REMOVE_RECURSE
  "CMakeFiles/fig02_tlp_effects.dir/fig02_tlp_effects.cpp.o"
  "CMakeFiles/fig02_tlp_effects.dir/fig02_tlp_effects.cpp.o.d"
  "fig02_tlp_effects"
  "fig02_tlp_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tlp_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
