file(REMOVE_RECURSE
  "CMakeFiles/sec6d_sensitivity.dir/sec6d_sensitivity.cpp.o"
  "CMakeFiles/sec6d_sensitivity.dir/sec6d_sensitivity.cpp.o.d"
  "sec6d_sensitivity"
  "sec6d_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6d_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
