# Empty compiler generated dependencies file for sec6d_sensitivity.
# This may be replaced when dependencies are built.
