file(REMOVE_RECURSE
  "CMakeFiles/custom_app_study.dir/custom_app_study.cpp.o"
  "CMakeFiles/custom_app_study.dir/custom_app_study.cpp.o.d"
  "custom_app_study"
  "custom_app_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_app_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
