# Empty dependencies file for custom_app_study.
# This may be replaced when dependencies are built.
