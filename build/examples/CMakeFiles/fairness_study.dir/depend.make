# Empty dependencies file for fairness_study.
# This may be replaced when dependencies are built.
