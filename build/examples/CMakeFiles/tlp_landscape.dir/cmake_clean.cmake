file(REMOVE_RECURSE
  "CMakeFiles/tlp_landscape.dir/tlp_landscape.cpp.o"
  "CMakeFiles/tlp_landscape.dir/tlp_landscape.cpp.o.d"
  "tlp_landscape"
  "tlp_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
