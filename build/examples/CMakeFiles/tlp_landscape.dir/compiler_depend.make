# Empty compiler generated dependencies file for tlp_landscape.
# This may be replaced when dependencies are built.
