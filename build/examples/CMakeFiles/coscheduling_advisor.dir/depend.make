# Empty dependencies file for coscheduling_advisor.
# This may be replaced when dependencies are built.
