file(REMOVE_RECURSE
  "CMakeFiles/coscheduling_advisor.dir/coscheduling_advisor.cpp.o"
  "CMakeFiles/coscheduling_advisor.dir/coscheduling_advisor.cpp.o.d"
  "coscheduling_advisor"
  "coscheduling_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coscheduling_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
