# Empty dependencies file for ebm_common.
# This may be replaced when dependencies are built.
