file(REMOVE_RECURSE
  "libebm_common.a"
)
