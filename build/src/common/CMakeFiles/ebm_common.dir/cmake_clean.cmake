file(REMOVE_RECURSE
  "CMakeFiles/ebm_common.dir/config.cpp.o"
  "CMakeFiles/ebm_common.dir/config.cpp.o.d"
  "libebm_common.a"
  "libebm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
