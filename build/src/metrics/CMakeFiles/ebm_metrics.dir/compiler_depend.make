# Empty compiler generated dependencies file for ebm_metrics.
# This may be replaced when dependencies are built.
