file(REMOVE_RECURSE
  "CMakeFiles/ebm_metrics.dir/metrics.cpp.o"
  "CMakeFiles/ebm_metrics.dir/metrics.cpp.o.d"
  "libebm_metrics.a"
  "libebm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
