file(REMOVE_RECURSE
  "libebm_metrics.a"
)
