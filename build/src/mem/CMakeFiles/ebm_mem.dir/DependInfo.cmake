
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cpp" "src/mem/CMakeFiles/ebm_mem.dir/address_map.cpp.o" "gcc" "src/mem/CMakeFiles/ebm_mem.dir/address_map.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/ebm_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/ebm_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/mem/CMakeFiles/ebm_mem.dir/dram.cpp.o" "gcc" "src/mem/CMakeFiles/ebm_mem.dir/dram.cpp.o.d"
  "/root/repo/src/mem/memory_partition.cpp" "src/mem/CMakeFiles/ebm_mem.dir/memory_partition.cpp.o" "gcc" "src/mem/CMakeFiles/ebm_mem.dir/memory_partition.cpp.o.d"
  "/root/repo/src/mem/mshr.cpp" "src/mem/CMakeFiles/ebm_mem.dir/mshr.cpp.o" "gcc" "src/mem/CMakeFiles/ebm_mem.dir/mshr.cpp.o.d"
  "/root/repo/src/mem/tag_array.cpp" "src/mem/CMakeFiles/ebm_mem.dir/tag_array.cpp.o" "gcc" "src/mem/CMakeFiles/ebm_mem.dir/tag_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ebm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
