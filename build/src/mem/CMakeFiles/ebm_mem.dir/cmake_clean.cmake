file(REMOVE_RECURSE
  "CMakeFiles/ebm_mem.dir/address_map.cpp.o"
  "CMakeFiles/ebm_mem.dir/address_map.cpp.o.d"
  "CMakeFiles/ebm_mem.dir/cache.cpp.o"
  "CMakeFiles/ebm_mem.dir/cache.cpp.o.d"
  "CMakeFiles/ebm_mem.dir/dram.cpp.o"
  "CMakeFiles/ebm_mem.dir/dram.cpp.o.d"
  "CMakeFiles/ebm_mem.dir/memory_partition.cpp.o"
  "CMakeFiles/ebm_mem.dir/memory_partition.cpp.o.d"
  "CMakeFiles/ebm_mem.dir/mshr.cpp.o"
  "CMakeFiles/ebm_mem.dir/mshr.cpp.o.d"
  "CMakeFiles/ebm_mem.dir/tag_array.cpp.o"
  "CMakeFiles/ebm_mem.dir/tag_array.cpp.o.d"
  "libebm_mem.a"
  "libebm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
