file(REMOVE_RECURSE
  "libebm_mem.a"
)
