# Empty compiler generated dependencies file for ebm_mem.
# This may be replaced when dependencies are built.
