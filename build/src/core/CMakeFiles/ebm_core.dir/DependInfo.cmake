
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ccws.cpp" "src/core/CMakeFiles/ebm_core.dir/ccws.cpp.o" "gcc" "src/core/CMakeFiles/ebm_core.dir/ccws.cpp.o.d"
  "/root/repo/src/core/dyncta.cpp" "src/core/CMakeFiles/ebm_core.dir/dyncta.cpp.o" "gcc" "src/core/CMakeFiles/ebm_core.dir/dyncta.cpp.o.d"
  "/root/repo/src/core/eb_monitor.cpp" "src/core/CMakeFiles/ebm_core.dir/eb_monitor.cpp.o" "gcc" "src/core/CMakeFiles/ebm_core.dir/eb_monitor.cpp.o.d"
  "/root/repo/src/core/mod_bypass.cpp" "src/core/CMakeFiles/ebm_core.dir/mod_bypass.cpp.o" "gcc" "src/core/CMakeFiles/ebm_core.dir/mod_bypass.cpp.o.d"
  "/root/repo/src/core/pbs_policy.cpp" "src/core/CMakeFiles/ebm_core.dir/pbs_policy.cpp.o" "gcc" "src/core/CMakeFiles/ebm_core.dir/pbs_policy.cpp.o.d"
  "/root/repo/src/core/pbs_search.cpp" "src/core/CMakeFiles/ebm_core.dir/pbs_search.cpp.o" "gcc" "src/core/CMakeFiles/ebm_core.dir/pbs_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ebm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ebm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ebm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ebm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ebm_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
