file(REMOVE_RECURSE
  "libebm_core.a"
)
