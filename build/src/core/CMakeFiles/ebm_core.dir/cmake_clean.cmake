file(REMOVE_RECURSE
  "CMakeFiles/ebm_core.dir/ccws.cpp.o"
  "CMakeFiles/ebm_core.dir/ccws.cpp.o.d"
  "CMakeFiles/ebm_core.dir/dyncta.cpp.o"
  "CMakeFiles/ebm_core.dir/dyncta.cpp.o.d"
  "CMakeFiles/ebm_core.dir/eb_monitor.cpp.o"
  "CMakeFiles/ebm_core.dir/eb_monitor.cpp.o.d"
  "CMakeFiles/ebm_core.dir/mod_bypass.cpp.o"
  "CMakeFiles/ebm_core.dir/mod_bypass.cpp.o.d"
  "CMakeFiles/ebm_core.dir/pbs_policy.cpp.o"
  "CMakeFiles/ebm_core.dir/pbs_policy.cpp.o.d"
  "CMakeFiles/ebm_core.dir/pbs_search.cpp.o"
  "CMakeFiles/ebm_core.dir/pbs_search.cpp.o.d"
  "libebm_core.a"
  "libebm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
