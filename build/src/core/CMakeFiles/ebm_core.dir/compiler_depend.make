# Empty compiler generated dependencies file for ebm_core.
# This may be replaced when dependencies are built.
