# Empty compiler generated dependencies file for ebm_sim.
# This may be replaced when dependencies are built.
