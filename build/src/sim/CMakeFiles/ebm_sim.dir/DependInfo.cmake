
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/gpu.cpp" "src/sim/CMakeFiles/ebm_sim.dir/gpu.cpp.o" "gcc" "src/sim/CMakeFiles/ebm_sim.dir/gpu.cpp.o.d"
  "/root/repo/src/sim/simt_core.cpp" "src/sim/CMakeFiles/ebm_sim.dir/simt_core.cpp.o" "gcc" "src/sim/CMakeFiles/ebm_sim.dir/simt_core.cpp.o.d"
  "/root/repo/src/sim/warp_scheduler.cpp" "src/sim/CMakeFiles/ebm_sim.dir/warp_scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/ebm_sim.dir/warp_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ebm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ebm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ebm_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
