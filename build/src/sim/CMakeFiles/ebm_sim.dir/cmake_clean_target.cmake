file(REMOVE_RECURSE
  "libebm_sim.a"
)
