file(REMOVE_RECURSE
  "CMakeFiles/ebm_sim.dir/gpu.cpp.o"
  "CMakeFiles/ebm_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/ebm_sim.dir/simt_core.cpp.o"
  "CMakeFiles/ebm_sim.dir/simt_core.cpp.o.d"
  "CMakeFiles/ebm_sim.dir/warp_scheduler.cpp.o"
  "CMakeFiles/ebm_sim.dir/warp_scheduler.cpp.o.d"
  "libebm_sim.a"
  "libebm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
