file(REMOVE_RECURSE
  "libebm_harness.a"
)
