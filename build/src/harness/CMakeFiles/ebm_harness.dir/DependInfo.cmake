
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/disk_cache.cpp" "src/harness/CMakeFiles/ebm_harness.dir/disk_cache.cpp.o" "gcc" "src/harness/CMakeFiles/ebm_harness.dir/disk_cache.cpp.o.d"
  "/root/repo/src/harness/exhaustive.cpp" "src/harness/CMakeFiles/ebm_harness.dir/exhaustive.cpp.o" "gcc" "src/harness/CMakeFiles/ebm_harness.dir/exhaustive.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/harness/CMakeFiles/ebm_harness.dir/experiment.cpp.o" "gcc" "src/harness/CMakeFiles/ebm_harness.dir/experiment.cpp.o.d"
  "/root/repo/src/harness/profile_db.cpp" "src/harness/CMakeFiles/ebm_harness.dir/profile_db.cpp.o" "gcc" "src/harness/CMakeFiles/ebm_harness.dir/profile_db.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/ebm_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/ebm_harness.dir/report.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "src/harness/CMakeFiles/ebm_harness.dir/runner.cpp.o" "gcc" "src/harness/CMakeFiles/ebm_harness.dir/runner.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "src/harness/CMakeFiles/ebm_harness.dir/table.cpp.o" "gcc" "src/harness/CMakeFiles/ebm_harness.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ebm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ebm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ebm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ebm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ebm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ebm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
