# Empty compiler generated dependencies file for ebm_harness.
# This may be replaced when dependencies are built.
