file(REMOVE_RECURSE
  "CMakeFiles/ebm_harness.dir/disk_cache.cpp.o"
  "CMakeFiles/ebm_harness.dir/disk_cache.cpp.o.d"
  "CMakeFiles/ebm_harness.dir/exhaustive.cpp.o"
  "CMakeFiles/ebm_harness.dir/exhaustive.cpp.o.d"
  "CMakeFiles/ebm_harness.dir/experiment.cpp.o"
  "CMakeFiles/ebm_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/ebm_harness.dir/profile_db.cpp.o"
  "CMakeFiles/ebm_harness.dir/profile_db.cpp.o.d"
  "CMakeFiles/ebm_harness.dir/report.cpp.o"
  "CMakeFiles/ebm_harness.dir/report.cpp.o.d"
  "CMakeFiles/ebm_harness.dir/runner.cpp.o"
  "CMakeFiles/ebm_harness.dir/runner.cpp.o.d"
  "CMakeFiles/ebm_harness.dir/table.cpp.o"
  "CMakeFiles/ebm_harness.dir/table.cpp.o.d"
  "libebm_harness.a"
  "libebm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
