
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_catalog.cpp" "src/workload/CMakeFiles/ebm_workload.dir/app_catalog.cpp.o" "gcc" "src/workload/CMakeFiles/ebm_workload.dir/app_catalog.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/workload/CMakeFiles/ebm_workload.dir/trace_gen.cpp.o" "gcc" "src/workload/CMakeFiles/ebm_workload.dir/trace_gen.cpp.o.d"
  "/root/repo/src/workload/workload_suite.cpp" "src/workload/CMakeFiles/ebm_workload.dir/workload_suite.cpp.o" "gcc" "src/workload/CMakeFiles/ebm_workload.dir/workload_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ebm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
