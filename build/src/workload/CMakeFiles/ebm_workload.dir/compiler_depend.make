# Empty compiler generated dependencies file for ebm_workload.
# This may be replaced when dependencies are built.
