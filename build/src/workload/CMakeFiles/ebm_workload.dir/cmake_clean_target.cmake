file(REMOVE_RECURSE
  "libebm_workload.a"
)
