file(REMOVE_RECURSE
  "CMakeFiles/ebm_workload.dir/app_catalog.cpp.o"
  "CMakeFiles/ebm_workload.dir/app_catalog.cpp.o.d"
  "CMakeFiles/ebm_workload.dir/trace_gen.cpp.o"
  "CMakeFiles/ebm_workload.dir/trace_gen.cpp.o.d"
  "CMakeFiles/ebm_workload.dir/workload_suite.cpp.o"
  "CMakeFiles/ebm_workload.dir/workload_suite.cpp.o.d"
  "libebm_workload.a"
  "libebm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
